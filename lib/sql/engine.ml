module Cluster = Crdb_kv.Cluster
module Zoneconfig = Crdb_kv.Zoneconfig
module Txn = Crdb_txn.Txn
module Topology = Crdb_net.Topology
module Sim = Crdb_sim.Sim
module Proc = Crdb_sim.Proc
module Ivar = Crdb_sim.Ivar
module Rng = Crdb_stdx.Rng
module Mvcc = Crdb_storage.Mvcc

exception Sql_error of string

let sql_error fmt = Format.kasprintf (fun m -> raise (Sql_error m)) fmt

type region_state = Public | Read_only

type phys_index = {
  pi_no : int;
  pi_def : Schema.index;
  pi_covering : bool;
  pi_pin : string option; (* duplicate-index leaseholder region *)
  mutable pi_ranges : (Keycodec.partition * Cluster.range_id) list;
}

type phys_table = {
  pt_id : int;
  mutable pt_schema : Schema.table;
  mutable pt_indexes : phys_index list; (* head is the primary index *)
}

type db = {
  d_name : string;
  d_engine : t;
  mutable d_primary : string;
  mutable d_regions : (string * region_state) list;
  mutable d_survival : Zoneconfig.survival;
  mutable d_placement : Zoneconfig.placement;
  d_tables : (string, phys_table) Hashtbl.t;
  mutable d_table_order : string list;
  mutable d_los : bool;
  mutable d_rehome_override : bool option;
}

and t = {
  cl : Cluster.t;
  mgr : Txn.manager;
  dbs : (string, db) Hashtbl.t;
  mutable next_table_id : int;
  mutable stmts : int;
  rng : Rng.t;
}

type row = (string * Value.t) list
type exec_error = Txn.error

let pp_exec_error = Txn.pp_error

let create cl =
  {
    cl;
    mgr = Txn.create_manager cl;
    dbs = Hashtbl.create 4;
    next_table_id = 1;
    stmts = 0;
    rng = Rng.create ~seed:0x5a1;
  }

let cluster t = t.cl
let txn_manager t = t.mgr

let database t name =
  match Hashtbl.find_opt t.dbs name with
  | Some db -> db
  | None -> sql_error "unknown database %s" name

let db_name db = db.d_name
let primary_region db = db.d_primary

let regions db =
  List.filter_map
    (fun (r, state) -> match state with Public -> Some r | Read_only -> None)
    db.d_regions

let survival db = db.d_survival

let table_names db = List.rev db.d_table_order

let phys_table db name =
  match Hashtbl.find_opt db.d_tables name with
  | Some pt -> pt
  | None -> sql_error "unknown table %s.%s" db.d_name name

let table_schema db name = (phys_table db name).pt_schema
let statements_executed t = t.stmts
let set_locality_optimized_search db v = db.d_los <- v
let set_auto_rehome_override db v = db.d_rehome_override <- v

let effective_rehome db pt =
  match db.d_rehome_override with
  | Some v -> v
  | None -> pt.pt_schema.Schema.tbl_auto_rehome

let region_of_node db node = Topology.region_of (Cluster.topology db.d_engine.cl) node

let is_rbr pt =
  match pt.pt_schema.Schema.tbl_locality with
  | Schema.Regional_by_row -> true
  | Schema.Regional_by_table _ | Schema.Global -> false

(* ------------------------------------------------------------------ *)
(* Physical layout (§3.3)                                              *)

let home_of db pt ~partition ~pin =
  match pin with
  | Some region -> region
  | None -> (
      match (pt.pt_schema.Schema.tbl_locality, partition) with
      | Schema.Regional_by_row, Some region -> region
      | Schema.Regional_by_row, None -> db.d_primary
      | Schema.Regional_by_table (Some r), _ -> r
      | Schema.Regional_by_table None, _ | Schema.Global, _ -> db.d_primary)

let zone_and_policy db pt ~partition ~pin =
  let home = home_of db pt ~partition ~pin in
  let all_regions = regions db in
  match pt.pt_schema.Schema.tbl_locality with
  | Schema.Global ->
      (* PLACEMENT RESTRICTED does not affect GLOBAL tables (§3.3.4). *)
      let zone =
        Zoneconfig.derive ~regions:all_regions ~home ~survival:db.d_survival
          ~placement:Zoneconfig.Default
      in
      (zone, Cluster.Lead)
  | Schema.Regional_by_row | Schema.Regional_by_table _ ->
      let zone =
        Zoneconfig.derive ~regions:all_regions ~home ~survival:db.d_survival
          ~placement:db.d_placement
      in
      (zone, Cluster.Lag (Cluster.config db.d_engine.cl).Cluster.close_lag)

let partitions_for db pt =
  if is_rbr pt then List.map (fun r -> Some r) (regions db) else [ None ]

let create_index_ranges db pt pi =
  let parts = if pi.pi_pin <> None then [ None ] else partitions_for db pt in
  pi.pi_ranges <-
    List.map
      (fun partition ->
        let zone, policy = zone_and_policy db pt ~partition ~pin:pi.pi_pin in
        let span =
          Keycodec.partition_span ~table_id:pt.pt_id ~index_no:pi.pi_no ~partition
        in
        (partition, Cluster.add_range db.d_engine.cl ~span ~zone ~policy))
      parts

(* [pi_ranges] remembers each partition and the range originally created for
   it, but range ids go stale: the KV layer splits and merges ranges at any
   time. Everything that acts on a partition's ranges resolves its span
   through the routing table at use time instead of trusting the cache. *)
let partition_rids db pt pi partition =
  let start_key, end_key =
    Keycodec.partition_span ~table_id:pt.pt_id ~index_no:pi.pi_no ~partition
  in
  Cluster.ranges_in_span db.d_engine.cl ~start_key ~end_key

let drop_index_ranges db pt pi =
  List.iter
    (fun (partition, _) ->
      List.iter
        (fun rid -> Cluster.drop_range db.d_engine.cl rid)
        (partition_rids db pt pi partition))
    pi.pi_ranges;
  pi.pi_ranges <- []

let realign_zones db =
  (* Re-derive every range's zone configuration after a region, survival or
     placement change. *)
  Hashtbl.iter
    (fun _ pt ->
      List.iter
        (fun pi ->
          List.iter
            (fun (partition, _) ->
              let zone, policy = zone_and_policy db pt ~partition ~pin:pi.pi_pin in
              List.iter
                (fun rid -> Cluster.alter_range db.d_engine.cl rid ~zone ~policy)
                (partition_rids db pt pi partition))
            pi.pi_ranges)
        pt.pt_indexes)
    db.d_tables

let build_phys_indexes db schema pt_id =
  let primary =
    {
      pi_no = Keycodec.primary_index;
      pi_def =
        {
          Schema.idx_name = "primary";
          idx_cols = schema.Schema.tbl_pkey;
          idx_unique = true;
        };
      pi_covering = true;
      pi_pin = None;
      pi_ranges = [];
    }
  in
  let secondaries =
    List.mapi
      (fun i def ->
        { pi_no = i + 1; pi_def = def; pi_covering = false; pi_pin = None; pi_ranges = [] })
      schema.Schema.tbl_indexes
  in
  let duplicates =
    if schema.Schema.tbl_duplicate_indexes then
      List.mapi
        (fun i region ->
          {
            pi_no = Keycodec.dup_index_base + i;
            pi_def =
              {
                Schema.idx_name = "dup_" ^ region;
                idx_cols = schema.Schema.tbl_pkey;
                idx_unique = true;
              };
            pi_covering = true;
            pi_pin = Some region;
            pi_ranges = [];
          })
        (regions db)
    else []
  in
  ignore pt_id;
  primary :: (secondaries @ duplicates)

let create_table_phys db schema =
  if Hashtbl.mem db.d_tables schema.Schema.tbl_name then
    sql_error "table %s.%s already exists" db.d_name schema.Schema.tbl_name;
  let schema =
    match schema.Schema.tbl_locality with
    | Schema.Regional_by_row -> Schema.with_region_column schema
    | Schema.Regional_by_table _ | Schema.Global -> schema
  in
  let pt_id = db.d_engine.next_table_id in
  db.d_engine.next_table_id <- pt_id + 1;
  let pt = { pt_id; pt_schema = schema; pt_indexes = [] } in
  pt.pt_indexes <- build_phys_indexes db schema pt_id;
  List.iter (fun pi -> create_index_ranges db pt pi) pt.pt_indexes;
  Hashtbl.replace db.d_tables schema.Schema.tbl_name pt;
  db.d_table_order <- schema.Schema.tbl_name :: db.d_table_order;
  pt

(* ------------------------------------------------------------------ *)
(* Row and index entry keys                                            *)

let pk_values pt (row : row) =
  List.map
    (fun c ->
      match List.assoc_opt c row with
      | Some v -> v
      | None -> sql_error "missing primary key column %s" c)
    pt.pt_schema.Schema.tbl_pkey

let index_key_values pt pi (row : row) =
  let base =
    List.map
      (fun c ->
        match List.assoc_opt c row with Some v -> v | None -> Value.V_null)
      pi.pi_def.Schema.idx_cols
  in
  if pi.pi_def.Schema.idx_unique then base
  else base @ pk_values pt row

let primary_of pt = List.hd pt.pt_indexes
let secondary_indexes pt =
  List.filter (fun pi -> pi.pi_no <> Keycodec.primary_index && pi.pi_pin = None)
    pt.pt_indexes
let dup_indexes pt = List.filter (fun pi -> pi.pi_pin <> None) pt.pt_indexes

let row_partition pt (row : row) : Keycodec.partition =
  if not (is_rbr pt) then None
  else
    match List.assoc_opt Schema.region_column row with
    | Some (Value.V_region r) -> Some r
    | Some v -> sql_error "invalid crdb_region value %s" (Value.to_display v)
    | None -> sql_error "missing crdb_region value"

let encode_full_row pt (row : row) =
  Value.encode_row (Schema.column_values pt.pt_schema row)

let decode_full_row pt raw = Schema.row_of_values pt.pt_schema (Value.decode_row raw)

(* ------------------------------------------------------------------ *)
(* Fetch context: reads through either a read-write txn or a read-only
   context, with the same planner code.                                *)

type fetch_ctx = {
  fc_get : string -> string option;
  fc_scan : start_key:string -> end_key:string -> limit:int option -> (string * string) list;
  fc_region : string;
  fc_sim : Sim.t;
}

let ctx_of_txn db t =
  {
    fc_get = (fun key -> Txn.get t key);
    fc_scan =
      (fun ~start_key ~end_key ~limit -> Txn.scan t ~start_key ~end_key ?limit ());
    fc_region = region_of_node db (Txn.gateway t);
    fc_sim = Cluster.sim db.d_engine.cl;
  }

let ctx_of_ro db gateway ro =
  {
    fc_get = (fun key -> Txn.ro_get ro key);
    fc_scan =
      (fun ~start_key ~end_key ~limit ->
        Txn.ro_scan ro ~start_key ~end_key ?limit ());
    fc_region = region_of_node db gateway;
    fc_sim = Cluster.sim db.d_engine.cl;
  }

(* Partition search plan for a point lookup on index [pi] with the given key
   column values available (§4.2). *)
type search_plan =
  | Search_one of Keycodec.partition
  | Search_local_first of Keycodec.partition * Keycodec.partition list
  | Search_all of Keycodec.partition list

let lookup_plan db pt ~local_region ~(known : row) =
  if not (is_rbr pt) then Search_one None
  else begin
    let parts = List.map (fun r -> Some r) (regions db) in
    (* The region may be explicit in the lookup values... *)
    match List.assoc_opt Schema.region_column known with
    | Some (Value.V_region r) -> Search_one (Some r)
    | Some _ | None -> (
        (* ...or computable from them (computed partitioning, §2.3.2). *)
        let computed =
          match Schema.region_computed_from pt.pt_schema with
          | Some cols when List.for_all (fun c -> List.mem_assoc c known) cols
            -> (
              match Schema.compute_region pt.pt_schema known with
              | Some (Value.V_region r) -> Some r
              | Some _ | None -> None)
          | Some _ | None -> None
        in
        match computed with
        | Some r -> Search_one (Some r)
        | None ->
            if db.d_los && List.mem local_region (regions db) then
              (* Locality Optimized Search (§4.2): the local partition
                 first; fan out only on a miss. *)
              Search_local_first
                ( Some local_region,
                  List.filter (fun p -> p <> Some local_region) parts )
            else Search_all parts)
  end

(* Run [lookup] against partitions per the plan; [lookup] returns the first
   match. Parallel legs preserve partition order when picking a winner. *)
let execute_plan ctx plan lookup =
  let parallel parts =
    let ivs =
      List.map (fun p -> Proc.async_catch ctx.fc_sim (fun () -> lookup p)) parts
    in
    let results = List.map Proc.await_catch ivs in
    List.fold_left
      (fun acc r -> match acc with Some _ -> acc | None -> r)
      None results
  in
  match plan with
  | Search_one p -> lookup p
  | Search_local_first (local, others) -> (
      match lookup local with
      | Some r -> Some r
      | None -> if others = [] then None else parallel others)
  | Search_all parts -> parallel parts

(* ------------------------------------------------------------------ *)
(* Point lookups                                                       *)

(* Find a row through an index. Returns (partition, decoded primary row). *)
let find_via_index db pt pi ctx ~(known : row) ~key_values =
  let plan = lookup_plan db pt ~local_region:ctx.fc_region ~known in
  let plan =
    (* Pinned duplicate indexes and non-partitioned indexes live in a single
       partition regardless of table locality. *)
    if pi.pi_pin <> None then Search_one None else plan
  in
  let lookup partition =
    let key =
      Keycodec.row_key ~table_id:pt.pt_id ~index_no:pi.pi_no ~partition key_values
    in
    match ctx.fc_get key with
    | Some raw -> Some (partition, raw)
    | None -> None
  in
  match execute_plan ctx plan lookup with
  | None -> None
  | Some (partition, raw) ->
      if pi.pi_covering then Some (partition, decode_full_row pt raw)
      else begin
        (* Secondary entry stores the primary key; fetch the row from the
           same partition (index entries are collocated with their row). *)
        let pk = Value.decode_row raw in
        let pkey =
          Keycodec.row_key ~table_id:pt.pt_id ~index_no:Keycodec.primary_index
            ~partition pk
        in
        match ctx.fc_get pkey with
        | Some row_raw -> Some (partition, decode_full_row pt row_raw)
        | None -> None
      end

let local_dup_index db pt ctx =
  if not pt.pt_schema.Schema.tbl_duplicate_indexes then None
  else
    List.find_opt
      (fun pi -> pi.pi_pin = Some ctx.fc_region)
      (dup_indexes pt)
      |> fun found ->
      (match found with Some _ -> found | None -> ignore db; None)

let select_pk_ctx db pt ctx pk =
  let known = List.combine pt.pt_schema.Schema.tbl_pkey pk in
  match local_dup_index db pt ctx with
  | Some pi -> (
      (* Read the local covering duplicate index (§7.3.1). *)
      match find_via_index db pt pi ctx ~known ~key_values:pk with
      | Some (_, row) -> Some (None, row)
      | None -> None)
  | None ->
      find_via_index db pt (primary_of pt) ctx ~known ~key_values:pk

let select_unique_ctx db pt ctx ~col value =
  let pi =
    match
      List.find_opt
        (fun pi ->
          pi.pi_def.Schema.idx_unique && pi.pi_def.Schema.idx_cols = [ col ])
        pt.pt_indexes
    with
    | Some pi -> pi
    | None -> sql_error "no unique index on %s(%s)" pt.pt_schema.Schema.tbl_name col
  in
  match find_via_index db pt pi ctx ~known:[ (col, value) ] ~key_values:[ value ] with
  | Some (_, row) -> Some row
  | None -> None

(* ------------------------------------------------------------------ *)
(* Mutations (inside a read-write transaction)                         *)

let normalize_insert db pt ~gateway_region (row : row) : row =
  let schema = pt.pt_schema in
  let value_for (c : Schema.column) =
    let provided =
      match List.assoc_opt c.Schema.col_name row with
      | Some v when not (Value.equal v Value.V_null) -> Some v
      | Some _ | None -> None
    in
    match c.Schema.col_default with
    | Schema.D_computed (cols, f) ->
        (* Computed columns always re-evaluate from their sources. *)
        f
          (List.map
             (fun cc ->
               match List.assoc_opt cc row with
               | Some v -> v
               | None -> Value.V_null)
             cols)
    | Schema.D_gateway_region -> (
        match provided with
        | Some v -> v
        | None -> Value.V_region gateway_region)
    | Schema.D_gen_uuid -> (
        match provided with
        | Some v -> v
        | None -> Value.gen_uuid db.d_engine.rng)
    | Schema.D_none -> ( match provided with Some v -> v | None -> Value.V_null)
  in
  let with_defaults =
    List.map
      (fun (c : Schema.column) -> (c.Schema.col_name, value_for c))
      schema.Schema.tbl_columns
  in
  List.iter
    (fun c ->
      match List.assoc_opt c with_defaults with
      | Some v when not (Value.equal v Value.V_null) -> ()
      | Some _ | None -> sql_error "NULL primary key column %s" c)
    schema.Schema.tbl_pkey;
  with_defaults

(* §4.1: when must an INSERT/UPDATE validate a unique index across all
   partitions? *)
let unique_check_scope pt pi =
  let cols = pi.pi_def.Schema.idx_cols in
  let all_uuid_defaults =
    List.for_all
      (fun c ->
        match Schema.find_column pt.pt_schema c with
        | Some { Schema.col_default = Schema.D_gen_uuid; _ } -> true
        | Some _ | None -> false)
      cols
  in
  if all_uuid_defaults then `Skip (* option 1: generated UUIDs *)
  else if not (is_rbr pt) then `Own_partition
  else if List.mem Schema.region_column cols then `Own_partition (* option 2 *)
  else
    match Schema.region_computed_from pt.pt_schema with
    | Some src when List.for_all (fun c -> List.mem c cols) src ->
        `Own_partition (* option 3: region is a function of the key *)
    | Some _ | None -> `All_partitions

let check_unique db pt ctx ~(row : row) ~own_pk ~partition =
  List.iter
    (fun pi ->
      if pi.pi_def.Schema.idx_unique && pi.pi_pin = None then begin
        let key_values =
          List.map
            (fun c ->
              match List.assoc_opt c row with
              | Some v -> v
              | None -> Value.V_null)
            pi.pi_def.Schema.idx_cols
        in
        let conflict_in partition =
          let key =
            Keycodec.row_key ~table_id:pt.pt_id ~index_no:pi.pi_no ~partition
              key_values
          in
          match ctx.fc_get key with
          | None -> None
          | Some raw ->
              let existing_pk =
                if pi.pi_no = Keycodec.primary_index then
                  pk_values pt (decode_full_row pt raw)
                else Value.decode_row raw
              in
              if Some existing_pk = own_pk then None else Some ()
        in
        let scope = unique_check_scope pt pi in
        let conflict =
          match scope with
          | `Skip -> None
          | `Own_partition -> conflict_in partition
          | `All_partitions ->
              let parts = List.map (fun r -> Some r) (regions db) in
              (* One point lookup per region, in parallel (§4.1). *)
              let ivs =
                List.map
                  (fun p -> Proc.async_catch ctx.fc_sim (fun () -> conflict_in p))
                  parts
              in
              List.fold_left
                (fun acc iv ->
                  match Proc.await_catch iv with Some () -> Some () | None -> acc)
                None ivs
        in
        match conflict with
        | Some () ->
            sql_error "duplicate key value violates unique constraint %s.%s"
              pt.pt_schema.Schema.tbl_name pi.pi_def.Schema.idx_name
        | None -> ()
      end)
    pt.pt_indexes

let check_fks db ctx txn_ctx_get (row : row) pt =
  List.iter
    (fun (fk : Schema.fk) ->
      let parent = phys_table db fk.Schema.fk_parent in
      let values =
        List.map
          (fun c ->
            match List.assoc_opt c row with
            | Some v -> v
            | None -> Value.V_null)
          fk.Schema.fk_cols
      in
      if List.exists (fun v -> Value.equal v Value.V_null) values then ()
      else begin
        ignore txn_ctx_get;
        match select_pk_ctx db parent ctx values with
        | Some _ -> ()
        | None ->
            sql_error "foreign key violation: %s -> %s"
              pt.pt_schema.Schema.tbl_name fk.Schema.fk_parent
      end)
    pt.pt_schema.Schema.tbl_fks

let row_keys pt ~partition (row : row) =
  let pk = pk_values pt row in
  let primary_key =
    Keycodec.row_key ~table_id:pt.pt_id ~index_no:Keycodec.primary_index
      ~partition pk
  in
  let secondary_keys =
    List.map
      (fun pi ->
        ( Keycodec.row_key ~table_id:pt.pt_id ~index_no:pi.pi_no ~partition
            (index_key_values pt pi row),
          Value.encode_row pk ))
      (secondary_indexes pt)
  in
  let dup_keys =
    List.map
      (fun pi ->
        ( Keycodec.row_key ~table_id:pt.pt_id ~index_no:pi.pi_no ~partition:None pk,
          encode_full_row pt row ))
      (dup_indexes pt)
  in
  (primary_key, secondary_keys, dup_keys)

let write_row_keys txn pt ~partition row =
  let primary_key, secondary_keys, dup_keys = row_keys pt ~partition row in
  Txn.put txn primary_key (encode_full_row pt row);
  List.iter (fun (k, v) -> Txn.put txn k v) secondary_keys;
  List.iter (fun (k, v) -> Txn.put txn k v) dup_keys

let delete_row_keys txn pt ~partition row =
  let primary_key, secondary_keys, dup_keys = row_keys pt ~partition row in
  Txn.delete txn primary_key;
  List.iter (fun (k, _) -> Txn.delete txn k) secondary_keys;
  List.iter (fun (k, _) -> Txn.delete txn k) dup_keys


(* ------------------------------------------------------------------ *)
(* Multi-statement transactions                                        *)

type txn_ctx = { tc_db : db; tc_txn : Txn.t; tc_ctx : fetch_ctx }

let t_gateway_region c = c.tc_ctx.fc_region

let t_insert_inner ?(check = true) c ~table (row : row) =
  let db = c.tc_db in
  let pt = phys_table db table in
  let normalized = normalize_insert db pt ~gateway_region:c.tc_ctx.fc_region row in
  let partition = row_partition pt normalized in
  (match (partition, is_rbr pt) with
  | Some r, true when not (List.mem r (regions db)) ->
      sql_error "region %s is not writable in database %s" r db.d_name
  | (Some _ | None), _ -> ());
  if check then begin
    check_fks db c.tc_ctx (fun k -> c.tc_ctx.fc_get k) normalized pt;
    check_unique db pt c.tc_ctx ~row:normalized ~own_pk:None ~partition
  end;
  write_row_keys c.tc_txn pt ~partition normalized

let t_insert c ~table row = t_insert_inner ~check:true c ~table row

let t_select_by_pk c ~table pk =
  let pt = phys_table c.tc_db table in
  match select_pk_ctx c.tc_db pt c.tc_ctx pk with
  | Some (_, row) -> Some row
  | None -> None

let merge_row (old_row : row) (set : row) : row =
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name old_row) then
        sql_error "unknown column %s in UPDATE" name)
    set;
  List.map
    (fun (name, v) ->
      match List.assoc_opt name set with Some nv -> (name, nv) | None -> (name, v))
    old_row

let t_update_by_pk c ~table pk ~set =
  let db = c.tc_db in
  let pt = phys_table db table in
  List.iter
    (fun (name, _) ->
      if List.mem name pt.pt_schema.Schema.tbl_pkey then
        sql_error "updating primary key columns is not supported")
    set;
  match find_via_index db pt (primary_of pt) c.tc_ctx ~known:(List.combine pt.pt_schema.Schema.tbl_pkey pk) ~key_values:pk with
  | None -> false
  | Some (partition, old_row) ->
      let new_row = merge_row old_row set in
      (* Recompute the computed region if its source columns changed. *)
      let new_row =
        match Schema.compute_region pt.pt_schema new_row with
        | Some r ->
            List.map
              (fun (n, v) ->
                if String.equal n Schema.region_column then (n, r) else (n, v))
              new_row
        | None -> new_row
      in
      (* Automatic rehoming (§2.3.2): the row moves to the region where it
         was just written, unless the region is computed. *)
      let gateway_region = c.tc_ctx.fc_region in
      let rehomed =
        effective_rehome db pt && is_rbr pt
        && Schema.region_computed_from pt.pt_schema = None
        && partition <> Some gateway_region
        && List.mem gateway_region (regions db)
      in
      let new_row =
        if rehomed then
          List.map
            (fun (n, v) ->
              if String.equal n Schema.region_column then
                (n, Value.V_region gateway_region)
              else (n, v))
            new_row
        else new_row
      in
      let new_partition = if rehomed then Some gateway_region else
          if is_rbr pt then row_partition pt new_row else None
      in
      (* Validate unique secondary indexes whose key values changed. *)
      List.iter
        (fun pi ->
          if
            pi.pi_def.Schema.idx_unique
            && pi.pi_no <> Keycodec.primary_index
            && pi.pi_pin = None
            && index_key_values pt pi new_row <> index_key_values pt pi old_row
          then
            check_unique db pt c.tc_ctx ~row:new_row ~own_pk:(Some pk)
              ~partition:new_partition)
        pt.pt_indexes;
      if new_partition <> partition then begin
        delete_row_keys c.tc_txn pt ~partition old_row;
        write_row_keys c.tc_txn pt ~partition:new_partition new_row
      end
      else begin
        (* Remove secondary entries whose keys changed, then rewrite. *)
        let _, old_sec, _ = row_keys pt ~partition old_row in
        let _, new_sec, _ = row_keys pt ~partition new_row in
        List.iter
          (fun (old_key, _) ->
            if not (List.mem_assoc old_key new_sec) then
              Txn.delete c.tc_txn old_key)
          old_sec;
        write_row_keys c.tc_txn pt ~partition new_row
      end;
      true

let t_delete_by_pk c ~table pk =
  let db = c.tc_db in
  let pt = phys_table db table in
  match
    find_via_index db pt (primary_of pt) c.tc_ctx
      ~known:(List.combine pt.pt_schema.Schema.tbl_pkey pk)
      ~key_values:pk
  with
  | None -> false
  | Some (partition, old_row) ->
      delete_row_keys c.tc_txn pt ~partition old_row;
      true

let prefix_partitions db pt (prefix_known : row) =
  if not (is_rbr pt) then [ None ]
  else
    match List.assoc_opt Schema.region_column prefix_known with
    | Some (Value.V_region r) -> [ Some r ]
    | Some _ | None -> (
        match Schema.compute_region pt.pt_schema prefix_known with
        | Some (Value.V_region r) -> [ Some r ]
        | Some _ | None -> List.map (fun r -> Some r) (regions db))

let select_prefix_ctx db pt ctx ~prefix ~limit =
  let pkey = pt.pt_schema.Schema.tbl_pkey in
  if List.length prefix > List.length pkey then
    sql_error "prefix longer than primary key";
  let prefix_known =
    List.mapi (fun i v -> (List.nth pkey i, v)) prefix
  in
  let partitions = prefix_partitions db pt prefix_known in
  let scan_partition partition =
    let start_key, end_key =
      Keycodec.prefix_span ~table_id:pt.pt_id ~index_no:Keycodec.primary_index
        ~partition prefix
    in
    ctx.fc_scan ~start_key ~end_key ~limit
  in
  let raw_rows =
    match partitions with
    | [ p ] -> scan_partition p
    | ps ->
        let ivs =
          List.map
            (fun p -> Proc.async_catch ctx.fc_sim (fun () -> scan_partition p))
            ps
        in
        List.concat_map Proc.await_catch ivs
  in
  let rows = List.map (fun (_, raw) -> decode_full_row pt raw) raw_rows in
  match limit with
  | Some l when List.length rows > l ->
      List.filteri (fun i _ -> i < l) rows
  | Some _ | None -> rows

let t_select_prefix c ~table ~prefix ?limit () =
  let pt = phys_table c.tc_db table in
  select_prefix_ctx c.tc_db pt c.tc_ctx ~prefix ~limit

let in_txn db ~gateway f =
  try
    Txn.run db.d_engine.mgr ~gateway (fun t ->
        f { tc_db = db; tc_txn = t; tc_ctx = ctx_of_txn db t })
  with Sql_error m -> Error (Txn.Aborted m)

(* ------------------------------------------------------------------ *)
(* Single-statement DML                                                *)

let insert db ~gateway ~table row =
  in_txn db ~gateway (fun c -> t_insert c ~table row)

let upsert db ~gateway ~table row =
  let pt = phys_table db table in
  let single_key =
    secondary_indexes pt = [] && dup_indexes pt = []
  in
  if single_key then begin
    (* The row is the transaction's entire effect: use the 1PC fast path. *)
    let gateway_region = region_of_node db gateway in
    let normalized = normalize_insert db pt ~gateway_region row in
    let partition = row_partition pt normalized in
    let key =
      Keycodec.row_key ~table_id:pt.pt_id ~index_no:Keycodec.primary_index
        ~partition (pk_values pt normalized)
    in
    Txn.run_blind_put db.d_engine.mgr ~gateway key (encode_full_row pt normalized)
  end
  else in_txn db ~gateway (fun c -> t_insert_inner ~check:false c ~table row)

let select_by_pk db ~gateway ~table pk =
  in_txn db ~gateway (fun c -> t_select_by_pk c ~table pk)

let select_by_unique db ~gateway ~table ~col value =
  in_txn db ~gateway (fun c ->
      let pt = phys_table db table in
      select_unique_ctx db pt c.tc_ctx ~col value)

let update_by_pk db ~gateway ~table pk ~set =
  in_txn db ~gateway (fun c -> t_update_by_pk c ~table pk ~set)

let delete_by_pk db ~gateway ~table pk =
  in_txn db ~gateway (fun c -> t_delete_by_pk c ~table pk)

let select_prefix db ~gateway ~table ~prefix ?limit () =
  in_txn db ~gateway (fun c -> t_select_prefix c ~table ~prefix ?limit ())

let select_by_pk_stale db ~gateway ~table ?(max_staleness = 10_000_000) pk =
  try
    let pt = phys_table db table in
    (* Negotiation needs the candidate keys up front (§5.3.2): the row key
       in every partition it could live in. *)
    let known = List.combine pt.pt_schema.Schema.tbl_pkey pk in
    let parts = prefix_partitions db pt known in
    let keys =
      List.map
        (fun partition ->
          Keycodec.row_key ~table_id:pt.pt_id ~index_no:Keycodec.primary_index
            ~partition pk)
        parts
    in
    Ok
      (Txn.run_stale_bounded db.d_engine.mgr ~gateway ~max_staleness ~keys
         (fun ro ->
           let ctx = ctx_of_ro db gateway ro in
           match select_pk_ctx db pt ctx pk with
           | Some (_, row) -> Some row
           | None -> None))
  with
  | Sql_error m -> Error (Txn.Aborted m)
  | Txn.Fatal m -> Error (Txn.Unavailable m)

let bulk_insert db ~table ?region rows =
  let pt = phys_table db table in
  let gateway_region = match region with Some r -> r | None -> db.d_primary in
  let kvs =
    List.concat_map
      (fun row ->
        let row = normalize_insert db pt ~gateway_region row in
        let partition = row_partition pt row in
        let primary_key, secondary_keys, dup_keys = row_keys pt ~partition row in
        ((primary_key, encode_full_row pt row) :: secondary_keys) @ dup_keys)
      rows
  in
  Cluster.bulk_load db.d_engine.cl kvs

(* ------------------------------------------------------------------ *)
(* DDL execution                                                       *)

(* Administrative operations (schema-change backfills, validations) run from
   node 0's gateway; their latency is not part of any measurement. *)
let any_gateway (_ : t) = 0

let collect_rows db pt =
  (* Read every row of the table through ordinary scans. DDL runs outside
     any process, so drive the simulation here. *)
  let primary = primary_of pt in
  let spans =
    List.map
      (fun (partition, _) ->
        ( partition,
          Keycodec.partition_span ~table_id:pt.pt_id
            ~index_no:Keycodec.primary_index ~partition ))
      primary.pi_ranges
  in
  Cluster.run db.d_engine.cl (fun () ->
      List.concat_map
        (fun (partition, (start_key, end_key)) ->
          match
            in_txn db ~gateway:(any_gateway db.d_engine) (fun c ->
                c.tc_ctx.fc_scan ~start_key ~end_key ~limit:None)
          with
          | Ok rows ->
              List.map (fun (_, raw) -> (partition, decode_full_row pt raw)) rows
          | Error e ->
              sql_error "schema change failed reading rows: %a" Txn.pp_error e)
        spans)

let backfill_rows db pt rows =
  (* Administrative backfill: install the new physical layout's keys
     directly, as CRDB's index backfiller does below SQL. *)
  let kvs =
    List.concat_map
      (fun (row : row) ->
        let partition = if is_rbr pt then row_partition pt row else None in
        let primary_key, secondary_keys, dup_keys = row_keys pt ~partition row in
        ((primary_key, encode_full_row pt row) :: secondary_keys) @ dup_keys)
      rows
  in
  Cluster.bulk_load db.d_engine.cl kvs

let default_region_value db pt (row : row) =
  match List.assoc_opt Schema.region_column row with
  | Some (Value.V_region r) when List.mem r (regions db) -> Value.V_region r
  | Some _ | None -> (
      match Schema.compute_region pt.pt_schema row with
      | Some (Value.V_region r) -> Value.V_region r
      | Some _ | None -> Value.V_region db.d_primary)

let rebuild_table_layout db pt ~new_schema =
  (* Online locality change (§2.4.2): build the new index set, backfill, and
     swap. We model the swap atomically at the end of the backfill. *)
  let old_rows = List.map snd (collect_rows db pt) in
  List.iter (fun pi -> drop_index_ranges db pt pi) pt.pt_indexes;
  let new_schema =
    match new_schema.Schema.tbl_locality with
    | Schema.Regional_by_row -> Schema.with_region_column new_schema
    | Schema.Regional_by_table _ | Schema.Global -> new_schema
  in
  pt.pt_schema <- new_schema;
  pt.pt_indexes <- build_phys_indexes db new_schema pt.pt_id;
  List.iter (fun pi -> create_index_ranges db pt pi) pt.pt_indexes;
  Cluster.settle db.d_engine.cl;
  let migrated =
    List.map
      (fun (row : row) ->
        (* Rows keep (or acquire) a region value consistent with the new
           layout. *)
        if is_rbr pt then
          let region = default_region_value db pt row in
          if List.mem_assoc Schema.region_column row then
            List.map
              (fun (n, v) ->
                if String.equal n Schema.region_column then (n, region) else (n, v))
              row
          else row @ [ (Schema.region_column, region) ]
        else row)
      old_rows
  in
  backfill_rows db pt migrated

let region_partition_empty db pt region =
  let primary = primary_of pt in
  match List.assoc_opt (Some region) primary.pi_ranges with
  | None -> true
  | Some _ -> (
      let start_key, end_key =
        Keycodec.partition_span ~table_id:pt.pt_id
          ~index_no:Keycodec.primary_index ~partition:(Some region)
      in
      match
        Cluster.run db.d_engine.cl (fun () ->
            in_txn db ~gateway:(any_gateway db.d_engine) (fun c ->
                c.tc_ctx.fc_scan ~start_key ~end_key ~limit:(Some 1)))
      with
      | Ok [] -> true
      | Ok _ -> false
      | Error e -> sql_error "region validation failed: %a" Txn.pp_error e)

let add_partition_for_region db region =
  Hashtbl.iter
    (fun _ pt ->
      if is_rbr pt then
        List.iter
          (fun pi ->
            if pi.pi_pin = None then begin
              let zone, policy =
                zone_and_policy db pt ~partition:(Some region) ~pin:None
              in
              let span =
                Keycodec.partition_span ~table_id:pt.pt_id ~index_no:pi.pi_no
                  ~partition:(Some region)
              in
              let rid = Cluster.add_range db.d_engine.cl ~span ~zone ~policy in
              pi.pi_ranges <- pi.pi_ranges @ [ (Some region, rid) ]
            end)
          pt.pt_indexes)
    db.d_tables

let drop_partition_for_region db region =
  Hashtbl.iter
    (fun _ pt ->
      List.iter
        (fun pi ->
          let keep, drop =
            List.partition (fun (p, _) -> p <> Some region) pi.pi_ranges
          in
          List.iter
            (fun (partition, _) ->
              List.iter
                (fun rid -> Cluster.drop_range db.d_engine.cl rid)
                (partition_rids db pt pi partition))
            drop;
          pi.pi_ranges <- keep)
        pt.pt_indexes)
    db.d_tables

let cluster_regions t = Topology.regions (Cluster.topology t.cl)

let exec_new t stmt =
  match stmt with
  | Ddl.N_create_database { db; primary; regions = rs } ->
      if Hashtbl.mem t.dbs db then sql_error "database %s already exists" db;
      let all = primary :: List.filter (fun r -> r <> primary) rs in
      List.iter
        (fun r ->
          if not (List.mem r (cluster_regions t)) then
            sql_error "region %S has no nodes in this cluster" r)
        all;
      Hashtbl.replace t.dbs db
        {
          d_name = db;
          d_engine = t;
          d_primary = primary;
          d_regions = List.map (fun r -> (r, Public)) all;
          d_survival = Zoneconfig.Zone;
          d_placement = Zoneconfig.Default;
          d_tables = Hashtbl.create 8;
          d_table_order = [];
          d_los = true;
          d_rehome_override = None;
        }
  | Ddl.N_set_primary_region { db; region } ->
      let db = database t db in
      if not (List.mem region (cluster_regions t)) then
        sql_error "region %S has no nodes in this cluster" region;
      if not (List.mem_assoc region db.d_regions) then
        db.d_regions <- db.d_regions @ [ (region, Public) ];
      db.d_primary <- region;
      realign_zones db;
      Cluster.settle t.cl
  | Ddl.N_add_region { db; region } ->
      let db = database t db in
      if List.mem_assoc region db.d_regions then
        sql_error "region %s already in database" region;
      if not (List.mem region (cluster_regions t)) then
        sql_error "region %S has no nodes in this cluster" region;
      db.d_regions <- db.d_regions @ [ (region, Public) ];
      add_partition_for_region db region;
      realign_zones db;
      Cluster.settle t.cl
  | Ddl.N_drop_region { db; region } ->
      let db = database t db in
      if String.equal region db.d_primary then
        sql_error "cannot drop the primary region";
      if not (List.mem_assoc region db.d_regions) then
        sql_error "region %s not in database" region;
      (* Mark READ ONLY, validate, then commit or roll back (§2.4.1). *)
      db.d_regions <-
        List.map
          (fun (r, s) -> if String.equal r region then (r, Read_only) else (r, s))
          db.d_regions;
      let dirty =
        Hashtbl.fold
          (fun _ pt acc ->
            acc || (is_rbr pt && not (region_partition_empty db pt region)))
          db.d_tables false
      in
      if dirty then begin
        db.d_regions <-
          List.map
            (fun (r, s) -> if String.equal r region then (r, Public) else (r, s))
            db.d_regions;
        sql_error "cannot drop region %s: REGIONAL BY ROW rows are homed there"
          region
      end
      else begin
        drop_partition_for_region db region;
        db.d_regions <- List.remove_assoc region db.d_regions;
        realign_zones db;
        Cluster.settle t.cl
      end
  | Ddl.N_survive { db; survival } ->
      let db = database t db in
      if survival = Zoneconfig.Region && List.length (regions db) < 3 then
        sql_error "SURVIVE REGION FAILURE requires at least 3 regions";
      if survival = Zoneconfig.Region && db.d_placement = Zoneconfig.Restricted
      then sql_error "PLACEMENT RESTRICTED is incompatible with REGION survival";
      db.d_survival <- survival;
      realign_zones db;
      Cluster.settle t.cl
  | Ddl.N_placement { db; restricted } ->
      let db = database t db in
      if restricted && db.d_survival = Zoneconfig.Region then
        sql_error "PLACEMENT RESTRICTED is incompatible with REGION survival";
      db.d_placement <-
        (if restricted then Zoneconfig.Restricted else Zoneconfig.Default);
      realign_zones db;
      Cluster.settle t.cl
  | Ddl.N_create_table { db; table } ->
      let db = database t db in
      ignore (create_table_phys db table : phys_table);
      Cluster.settle t.cl
  | Ddl.N_set_locality { db; table; locality } ->
      let db = database t db in
      let pt = phys_table db table in
      if pt.pt_schema.Schema.tbl_locality <> locality then
        rebuild_table_layout db pt
          ~new_schema:{ pt.pt_schema with Schema.tbl_locality = locality }
  | Ddl.N_add_computed_region { db; table; from_cols; compute; _ } ->
      let db = database t db in
      let pt = phys_table db table in
      let schema = Schema.with_region_column pt.pt_schema in
      let columns =
        List.map
          (fun (c : Schema.column) ->
            if String.equal c.Schema.col_name Schema.region_column then
              {
                c with
                Schema.col_default = Schema.D_computed (from_cols, compute);
              }
            else c)
          schema.Schema.tbl_columns
      in
      rebuild_table_layout db pt
        ~new_schema:{ schema with Schema.tbl_columns = columns }
  | Ddl.L_create_database _ | Ddl.L_create_table _
  | Ddl.L_add_partition_column _ | Ddl.L_partition_by _ | Ddl.L_configure_zone _
  | Ddl.L_create_duplicate_index _ | Ddl.L_drop_index _ ->
      sql_error
        "legacy imperative statements are counted (Table 2) but not executable"

let exec t stmt =
  t.stmts <- t.stmts + 1;
  try exec_new t stmt
  with Invalid_argument m -> raise (Sql_error m)

let exec_all t stmts = List.iter (exec t) stmts

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let ranges_of_table db table =
  let pt = phys_table db table in
  List.concat_map
    (fun pi ->
      List.concat_map
        (fun (partition, _) -> partition_rids db pt pi partition)
        pi.pi_ranges)
    pt.pt_indexes
  |> List.sort_uniq Int.compare

let partition_ranges db table =
  let pt = phys_table db table in
  let primary = primary_of pt in
  List.map
    (fun (partition, rid) ->
      (* Re-resolve in case the partition's original range has split or
         merged; the first covering range anchors the partition. *)
      match partition_rids db pt primary partition with
      | first :: _ -> (partition, first)
      | [] -> (partition, rid))
    primary.pi_ranges

let leaseholder_store db rid =
  match Cluster.leaseholder db.d_engine.cl rid with
  | None -> None
  | Some node -> Cluster.storage_of db.d_engine.cl rid node

let row_count db table =
  let pt = phys_table db table in
  let primary = primary_of pt in
  List.fold_left
    (fun acc (partition, _) ->
      let start_key, end_key =
        Keycodec.partition_span ~table_id:pt.pt_id
          ~index_no:Keycodec.primary_index ~partition
      in
      List.fold_left
        (fun acc rid ->
          match leaseholder_store db rid with
          | None -> acc
          | Some store ->
              (* A range can cover more than this partition after a merge;
                 count only keys inside the partition span. *)
              acc
              + Mvcc.fold_latest store ~init:0 ~f:(fun n key _ ->
                    if
                      String.compare key start_key >= 0
                      && String.compare key end_key < 0
                    then n + 1
                    else n))
        acc
        (partition_rids db pt primary partition))
    0 primary.pi_ranges

let region_of_row db ~table pk =
  let pt = phys_table db table in
  List.fold_left
    (fun acc (partition, _) ->
      match acc with
      | Some _ -> acc
      | None -> (
          let key =
            Keycodec.row_key ~table_id:pt.pt_id ~index_no:Keycodec.primary_index
              ~partition pk
          in
          match Cluster.range_of_key db.d_engine.cl key with
          | exception Not_found -> None
          | rid -> (
              match leaseholder_store db rid with
              | None -> None
              | Some store -> (
                  match
                    Mvcc.read store ~key ~ts:Crdb_hlc.Timestamp.max_value
                      ~max_ts:Crdb_hlc.Timestamp.max_value ~for_txn:None
                  with
                  | Mvcc.Value { value = Some _; _ } ->
                      (match partition with Some r -> Some r | None -> Some "")
                  | Mvcc.Value { value = None; _ } | Mvcc.Uncertain _
                  | Mvcc.Intent_blocked _ ->
                      None))))
    None (primary_of pt).pi_ranges
