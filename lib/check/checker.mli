(** Offline consistency checkers over {!History} records.

    Both checkers are pure: they read a completed history and return a
    verdict, so a failing chaos run can be replayed from its seed and the
    verdict diffed byte-for-byte. *)

type verdict =
  | Valid of { ops : int }  (** number of operations the checker examined *)
  | Violation of { message : string; counterexample : string }
  | Inconclusive of string  (** search budget exhausted — neither proof *)

val is_valid : verdict -> bool
val verdict_to_string : verdict -> string

val check_linearizable : ?budget:int -> History.t -> verdict
(** Per-key linearizability of the register operations (reads and writes) in
    the history, by Wing–Gong-style search: find an order of the operations,
    consistent with real-time precedence, under which every read returns the
    latest written value. Operations with unknown outcomes ([Info], or still
    pending) are allowed to take effect at any point after invocation or
    never; [Failed] operations are ignored. [budget] (default 2e6) bounds
    explored states per key; exceeding it yields [Inconclusive]. On failure
    the counterexample shows the operations no linearization can explain. *)

val check_bank : total:int -> History.t -> verdict
(** The bank-transfer serializability invariant (generalized from
    [test_txn.ml]): every successful [Snapshot] of all accounts must sum to
    [total], the invariant conserved by every [Transfer]. *)
