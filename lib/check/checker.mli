(** Offline consistency checkers over {!History} records.

    Both checkers are pure: they read a completed history and return a
    verdict, so a failing chaos run can be replayed from its seed and the
    verdict diffed byte-for-byte. *)

type verdict =
  | Valid of { ops : int }  (** number of operations the checker examined *)
  | Violation of { message : string; counterexample : string }
  | Inconclusive of string  (** search budget exhausted — neither proof *)

val is_valid : verdict -> bool
val verdict_to_string : verdict -> string

val check_linearizable : ?budget:int -> History.t -> verdict
(** Per-key linearizability of the register operations (reads and writes) in
    the history, by Wing–Gong-style search: find an order of the operations,
    consistent with real-time precedence, under which every read returns the
    latest written value. Operations with unknown outcomes ([Info], or still
    pending) are allowed to take effect at any point after invocation or
    never; [Failed] operations are ignored. [budget] (default 2e6) bounds
    explored states per key; exceeding it yields [Inconclusive]. On failure
    the counterexample shows the operations no linearization can explain. *)

val check_bank : total:int -> History.t -> verdict
(** The bank-transfer serializability invariant (generalized from
    [test_txn.ml]): every successful [Snapshot] of all accounts must sum to
    [total], the invariant conserved by every [Transfer]. *)

(** {2 Multi-key serializability} *)

type anomaly =
  | G0  (** write cycle: a cycle of ww dependencies alone *)
  | G1a  (** aborted read: a committed read observed an aborted write *)
  | G1c  (** circular information flow: a ww/wr cycle *)
  | G2_item  (** anti-dependency cycle: a cycle needing an rw edge *)
  | Lost_update
      (** rw/ww cycle where the anti-dependent reader also wrote the key it
          read: two read-modify-writes proceeded from the same version *)

val anomaly_to_string : anomaly -> string

val check_serializable : History.t -> verdict
(** Elle-style transactional consistency check over the whole-transaction
    records of the history ({!History.txns}). Write–read, write–write and
    read–write (anti-)dependencies are inferred from unique written values,
    with per-key version order given by MVCC commit timestamps (ties, which
    the simulator never produces, are ordered by visibility: the version a
    later transaction observed was installed last); a cycle in
    the serialization graph is a violation, classified by {!anomaly} (most
    severe class first) and reported with a minimal witness cycle.
    Aborted transactions must never be observed; indeterminate transactions
    are included only when an observed value proves they committed.
    [Inconclusive] when the unique-written-value assumption does not hold
    for the history. Pure and deterministic: the same history yields a
    byte-identical verdict. *)

val check_serializable_report : History.t -> anomaly option * verdict
(** Like {!check_serializable}, also exposing the anomaly classification
    ([None] for valid or inconclusive histories). *)
