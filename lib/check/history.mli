(** Jepsen-style operation histories at simulated-time resolution.

    Each client operation is recorded twice: once at invocation and once at
    completion. An operation whose outcome the client never learned — a
    timeout, an exhausted retry loop, a history that ended first — stays in
    the [Info] state and the checkers must consider both possibilities (it
    may or may not have taken effect). [Failed] is reserved for outcomes the
    system {e guarantees} had no effect. *)

type op =
  | Read of { key : string }
  | Write of { key : string; value : string }
  | Transfer of { src : string; dst : string; amount : int }
  | Snapshot  (** read of all bank accounts in one transaction *)

type outcome =
  | Ok_read of string option
  | Ok_write
  | Ok_transfer
  | Ok_snapshot of (string * int) list  (** account, balance *)
  | Failed of string  (** definitely did not take effect *)
  | Info of string  (** unknown: may or may not have taken effect *)

type entry = {
  id : int;
  client : int;
  op : op;
  invoked : int;  (** simulated microseconds *)
  mutable completed : int;  (** [-1] while pending *)
  mutable outcome : outcome option;  (** [None] while pending *)
}

type t

val create : unit -> t
val length : t -> int

val entries : t -> entry list
(** In invocation order (ties broken by recording order, which is
    deterministic under the simulator). *)

val invoke : t -> client:int -> now:int -> op -> entry
val complete : entry -> now:int -> outcome -> unit

val entry_to_string : entry -> string
val to_string : t -> string
(** Deterministic rendering: one line per entry, for seed-replay diffing. *)

(** {2 Whole-transaction records}

    For the multi-key serializability checker a history also records whole
    transactions: every physical attempt is one record — its external reads
    with the {e observed values} (the evidence dependencies are inferred
    from), its writes, and how it ended. An attempt whose commit record may
    have been proposed before the client lost track of it is
    [T_indeterminate], carrying the timestamp it would have committed at if
    it did. *)

type txn_op =
  | T_read of { key : string; value : string option }
      (** observed value ([None] = the key's initial nil version) *)
  | T_write of { key : string; value : string }

type txn_status =
  | T_committed of { commit_ts : Crdb_hlc.Timestamp.t }
      (** MVCC commit timestamp: the version order of its writes *)
  | T_aborted  (** definitely had no effect *)
  | T_indeterminate of { commit_ts : Crdb_hlc.Timestamp.t option }
      (** may or may not have committed; if it did, at [commit_ts] *)

type txn = {
  tid : int;  (** unique per recorded attempt *)
  t_client : int;
  t_began : int;  (** simulated microseconds *)
  t_ended : int;
  t_ops : txn_op list;  (** program order *)
  t_status : txn_status;
}

val record_txn :
  t ->
  tid:int ->
  client:int ->
  began:int ->
  ended:int ->
  ops:txn_op list ->
  status:txn_status ->
  unit

val txns : t -> txn list
(** In recording order (deterministic under the simulator). *)

val num_txns : t -> int
val txn_op_to_string : txn_op -> string
val txn_to_string : txn -> string
val txns_to_string : t -> string

(** {2 Serialization}

    A dumped history can be reloaded in a later process and fed to the same
    checkers offline ([crdb_sim chaos --dump-history] / [crdb_sim check]).
    [deserialize] accepts exactly what [serialize] emits; the round trip is
    the identity on both entries and transaction records. *)

val serialize : t -> string
val deserialize : string -> (t, string) result
