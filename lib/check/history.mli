(** Jepsen-style operation histories at simulated-time resolution.

    Each client operation is recorded twice: once at invocation and once at
    completion. An operation whose outcome the client never learned — a
    timeout, an exhausted retry loop, a history that ended first — stays in
    the [Info] state and the checkers must consider both possibilities (it
    may or may not have taken effect). [Failed] is reserved for outcomes the
    system {e guarantees} had no effect. *)

type op =
  | Read of { key : string }
  | Write of { key : string; value : string }
  | Transfer of { src : string; dst : string; amount : int }
  | Snapshot  (** read of all bank accounts in one transaction *)

type outcome =
  | Ok_read of string option
  | Ok_write
  | Ok_transfer
  | Ok_snapshot of (string * int) list  (** account, balance *)
  | Failed of string  (** definitely did not take effect *)
  | Info of string  (** unknown: may or may not have taken effect *)

type entry = {
  id : int;
  client : int;
  op : op;
  invoked : int;  (** simulated microseconds *)
  mutable completed : int;  (** [-1] while pending *)
  mutable outcome : outcome option;  (** [None] while pending *)
}

type t

val create : unit -> t
val length : t -> int

val entries : t -> entry list
(** In invocation order (ties broken by recording order, which is
    deterministic under the simulator). *)

val invoke : t -> client:int -> now:int -> op -> entry
val complete : entry -> now:int -> outcome -> unit

val entry_to_string : entry -> string
val to_string : t -> string
(** Deterministic rendering: one line per entry, for seed-replay diffing. *)
