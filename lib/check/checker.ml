type verdict =
  | Valid of { ops : int }
  | Violation of { message : string; counterexample : string }
  | Inconclusive of string

let is_valid = function Valid _ -> true | Violation _ | Inconclusive _ -> false

let verdict_to_string = function
  | Valid { ops } -> Printf.sprintf "valid (%d ops checked)" ops
  | Violation { message; counterexample } ->
      Printf.sprintf "VIOLATION: %s\n%s" message counterexample
  | Inconclusive msg -> Printf.sprintf "inconclusive: %s" msg

(* ------------------------------------------------------------------ *)
(* Per-key linearizability (Wing–Gong search)                          *)

(* One operation of a single register's sub-history. [l_completed] is
   [max_int] for operations with unknown outcome; [l_optional] marks writes
   that may never have taken effect and are allowed to linearize as no-ops. *)
type lop = {
  l_entry : History.entry;
  l_invoked : int;
  l_completed : int;
  l_kind : [ `Read of string option | `Write of string ];
  l_optional : bool;
}

exception Linearized

(* The search explores linearization prefixes: a state is (set of linearized
   ops, register value). An op may be appended when its invocation does not
   follow the completion of any other un-linearized op (Wing & Gong's rule);
   reads must match the register. States are memoized so the search is
   polynomial on the mostly-sequential histories the simulator produces. *)
let search_key ~budget ops =
  let n = Array.length ops in
  let mandatory = ref 0 in
  Array.iter (fun o -> if not o.l_optional then incr mandatory) ops;
  let mandatory = !mandatory in
  let visited = Hashtbl.create 1024 in
  let explored = ref 0 in
  let best_count = ref (-1) in
  let best_set = ref (Bytes.create 0) in
  let best_value = ref None in
  let in_set set i = Char.code (Bytes.get set (i / 8)) land (1 lsl (i mod 8)) <> 0 in
  let add set i =
    let set = Bytes.copy set in
    Bytes.set set (i / 8)
      (Char.chr (Char.code (Bytes.get set (i / 8)) lor (1 lsl (i mod 8))));
    set
  in
  let rec go set value done_mandatory =
    if done_mandatory = mandatory then raise Linearized;
    let memo_key = (Bytes.to_string set, value) in
    if not (Hashtbl.mem visited memo_key) then begin
      Hashtbl.replace visited memo_key ();
      incr explored;
      if !explored > budget then failwith "budget";
      if done_mandatory > !best_count then begin
        best_count := done_mandatory;
        best_set := Bytes.copy set;
        best_value := value
      end;
      let min_end = ref max_int in
      for i = 0 to n - 1 do
        if (not (in_set set i)) && ops.(i).l_completed < !min_end then
          min_end := ops.(i).l_completed
      done;
      for i = 0 to n - 1 do
        if (not (in_set set i)) && ops.(i).l_invoked <= !min_end then begin
          let bump = if ops.(i).l_optional then 0 else 1 in
          (match ops.(i).l_kind with
          | `Write v -> go (add set i) (Some v) (done_mandatory + bump)
          | `Read v -> if v = value then go (add set i) value (done_mandatory + bump));
          (* An unknown-outcome write may also never have happened. *)
          if ops.(i).l_optional then go (add set i) value done_mandatory
        end
      done
    end
  in
  let set0 = Bytes.make ((n / 8) + 1) '\000' in
  match go set0 None 0 with
  | () ->
      let remaining =
        List.filter (fun i -> not (in_set !best_set i)) (List.init n Fun.id)
      in
      `Violation (!best_count, mandatory, !best_value, remaining)
  | exception Linearized -> `Ok
  | exception Failure _ -> `Budget

let lops_of_entries entries =
  List.filter_map
    (fun (e : History.entry) ->
      let mk kind optional completed =
        Some
          {
            l_entry = e;
            l_invoked = e.History.invoked;
            l_completed = completed;
            l_kind = kind;
            l_optional = optional;
          }
      in
      match (e.History.op, e.History.outcome) with
      | History.Read _, Some (History.Ok_read v) -> mk (`Read v) false e.History.completed
      | History.Read _, _ ->
          (* A failed or unresolved read returned nothing: no constraint. *)
          None
      | History.Write { value; _ }, Some History.Ok_write ->
          mk (`Write value) false e.History.completed
      | History.Write _, Some (History.Failed _) -> None
      | History.Write { value; _ }, (Some (History.Info _) | None) ->
          (* Unknown outcome: may take effect at any point after invocation,
             or never. *)
          mk (`Write value) true max_int
      | History.Write _, Some _ -> None
      | (History.Transfer _ | History.Snapshot), _ -> None)
    entries

let render_violation key ops (count, mandatory, value, remaining) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "key %s: best linearization covers %d/%d committed ops; register then held %s\n"
       key count mandatory
       (match value with None -> "nil" | Some v -> Printf.sprintf "%S" v));
  Buffer.add_string buf "  un-linearizable suffix:\n";
  List.iteri
    (fun i idx ->
      if i < 8 then
        Buffer.add_string buf
          (Printf.sprintf "    %s\n" (History.entry_to_string ops.(idx).l_entry)))
    remaining;
  if List.length remaining > 8 then
    Buffer.add_string buf
      (Printf.sprintf "    ... and %d more\n" (List.length remaining - 8));
  Buffer.contents buf

(* Default search budget. Write pipelining keeps many ops concurrently open
   on a hot key under chaos (lost replies wait out the RPC timeout), and the
   per-key state count grows with the width of that concurrency window; 10M
   states clears the widest histories the chaos gates produce with headroom
   while still bounding a genuinely inconclusive search. *)
let check_linearizable ?(budget = 10_000_000) history =
  let by_key = Hashtbl.create 64 in
  List.iter
    (fun (e : History.entry) ->
      match e.History.op with
      | History.Read { key } | History.Write { key; _ } ->
          let l =
            match Hashtbl.find_opt by_key key with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.replace by_key key l;
                l
          in
          l := e :: !l
      | History.Transfer _ | History.Snapshot -> ())
    (History.entries history);
  let keys = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) by_key []) in
  let checked = ref 0 in
  let result =
    List.fold_left
      (fun acc key ->
        match acc with
        | Some _ -> acc
        | None -> (
            let entries = List.rev !(Hashtbl.find by_key key) in
            let ops = Array.of_list (lops_of_entries entries) in
            checked := !checked + Array.length ops;
            match search_key ~budget ops with
            | `Ok -> None
            | `Budget ->
                Some
                  (Inconclusive
                     (Printf.sprintf "key %s: search budget (%d states) exhausted" key budget))
            | `Violation v ->
                Some
                  (Violation
                     {
                       message = Printf.sprintf "history is not linearizable at key %s" key;
                       counterexample = render_violation key ops v;
                     })))
      None keys
  in
  match result with None -> Valid { ops = !checked } | Some v -> v

(* ------------------------------------------------------------------ *)
(* Bank-transfer serializability invariant                             *)

(* Generalizes test_txn's bank test: transfers move money between accounts
   inside serializable transactions, so every transactional snapshot of all
   accounts must observe the same total. A snapshot summing to anything else
   exhibits a non-serializable read (e.g. it observed half of a transfer). *)
let check_bank ~total history =
  let snapshots = ref 0 and transfers = ref 0 in
  let bad =
    List.fold_left
      (fun acc (e : History.entry) ->
        match (acc, e.History.op, e.History.outcome) with
        | Some _, _, _ -> acc
        | None, History.Transfer _, Some History.Ok_transfer ->
            incr transfers;
            acc
        | None, History.Snapshot, Some (History.Ok_snapshot rows) ->
            incr snapshots;
            let sum = List.fold_left (fun s (_, b) -> s + b) 0 rows in
            if sum = total then acc else Some (e, sum)
        | None, _, _ -> acc)
      None (History.entries history)
  in
  match bad with
  | None -> Valid { ops = !snapshots + !transfers }
  | Some (e, sum) ->
      Violation
        {
          message =
            Printf.sprintf
              "bank invariant broken: snapshot totals %d, expected %d (money %s)"
              sum total
              (if sum < total then "destroyed" else "created");
          counterexample = Printf.sprintf "  %s\n" (History.entry_to_string e);
        }

(* ------------------------------------------------------------------ *)
(* Multi-key serializability: dependency-graph cycle detection          *)

module Ts = Crdb_hlc.Timestamp

type anomaly = G0 | G1a | G1c | G2_item | Lost_update

let anomaly_to_string = function
  | G0 -> "G0 (write cycle)"
  | G1a -> "G1a (aborted read)"
  | G1c -> "G1c (circular information flow)"
  | G2_item -> "G2-item (anti-dependency cycle)"
  | Lost_update -> "lost update"

(* Elle-style inference (Adya's taxonomy over an MVCC history): every
   committed write carries a value unique to its transaction, so a read
   identifies the exact version — and transaction — it observed, and commit
   timestamps give the per-key version order directly. From those two facts
   the three dependency kinds follow:

     - ww: Ti installed the version immediately before Tj's on some key;
     - wr: Tj read the version Ti installed;
     - rw: Ti read a version whose immediate successor Tj installed
           (an anti-dependency: Ti must precede Tj in any serial order).

   A cycle in the union is a serializability violation. Classification
   searches the tiers in severity order — a cycle of only ww edges is G0,
   a ww/wr cycle is G1c, and any cycle needing an rw edge is G2-item
   (lost update when the anti-dependent reader also wrote the key it read,
   i.e. two read-modify-writes both proceeded from the same version).

   Indeterminate transactions participate conservatively: one whose unique
   written value was observed by any read definitely committed and is
   promoted (at its recorded would-be commit timestamp); an unobserved one
   is excluded, which can only hide anomalies, never invent them. Reads of
   a [T_aborted] transaction's value are impossible in a correct system and
   reported as G1a. *)

type stxn = {
  s_txn : History.txn;
  s_reads : (string * string option) list;  (* external reads, program order *)
  s_writes : (string * string) list;  (* final write per key, program order *)
}

type edge_kind = E_ww | E_wr | E_rw

let edge_kind_to_string = function E_ww -> "ww" | E_wr -> "wr" | E_rw -> "rw"

exception Inconclusive_because of string
exception Anomaly_found of anomaly * string  (* counterexample *)

(* External reads and final writes of one transaction: a read of a key the
   transaction already wrote observes its own intent and constrains nothing
   outside it; an overwritten intermediate write never becomes a version. *)
let summarize (x : History.txn) =
  let written = Hashtbl.create 4 in
  let reads = ref [] and writes = ref [] in
  List.iter
    (fun op ->
      match op with
      | History.T_read { key; value } ->
          if not (Hashtbl.mem written key) then
            if not (List.mem (key, value) !reads) then reads := (key, value) :: !reads
      | History.T_write { key; value } ->
          Hashtbl.replace written key value;
          writes := List.filter (fun (k, _) -> k <> key) !writes;
          writes := (key, value) :: !writes)
    x.History.t_ops;
  { s_txn = x; s_reads = List.rev !reads; s_writes = List.rev !writes }

let commit_ts_of (x : History.txn) =
  match x.History.t_status with
  | History.T_committed { commit_ts } -> Some commit_ts
  | History.T_indeterminate { commit_ts } -> commit_ts
  | History.T_aborted -> None

(* Shortest cycle in the directed graph restricted to [kinds], by BFS from
   every node in ascending tid order; ties go to the earliest start node.
   Returns the cycle as [(tid, kind, key); ...] meaning tid --kind(key)-->
   next element's tid (wrapping around). *)
let shortest_cycle ~kinds adj tids =
  let allowed k = List.mem k kinds in
  let best = ref None in
  let consider cycle =
    match !best with
    | Some b when List.length b <= List.length cycle -> ()
    | _ -> best := Some cycle
  in
  List.iter
    (fun start ->
      (* BFS over allowed edges; stop when we step back into [start]. *)
      let parent = Hashtbl.create 64 in
      let q = Queue.create () in
      Queue.push start q;
      Hashtbl.replace parent start None;
      let found = ref None in
      while !found = None && not (Queue.is_empty q) do
        let u = Queue.pop q in
        List.iter
          (fun (v, kind, key) ->
            if allowed kind && !found = None then
              if v = start then found := Some (u, kind, key)
              else if not (Hashtbl.mem parent v) then begin
                Hashtbl.replace parent v (Some (u, kind, key));
                Queue.push v q
              end)
          (try Hashtbl.find adj u with Not_found -> [])
      done;
      match !found with
      | None -> ()
      | Some (last, kind, key) ->
          (* Reconstruct start -> ... -> last --kind--> start. *)
          let rec path u acc =
            match Hashtbl.find parent u with
            | None -> acc
            | Some (p, k, ky) -> path p ((p, k, ky) :: acc)
          in
          let prefix = path last [] in
          consider (prefix @ [ (last, kind, key) ]))
    tids;
  !best

let check_serializable_report history =
  let recorded = History.txns history in
  match recorded with
  | [] -> (None, Valid { ops = 0 })
  | _ -> (
      try
        let xs = List.map summarize recorded in
        let by_tid = Hashtbl.create 64 in
        List.iter
          (fun s ->
            if Hashtbl.mem by_tid s.s_txn.History.tid then
              raise
                (Inconclusive_because
                   (Printf.sprintf "duplicate transaction id T%d" s.s_txn.History.tid));
            Hashtbl.replace by_tid s.s_txn.History.tid s)
          xs;
        (* Unique-value writer index over every recorded attempt. *)
        let writer = Hashtbl.create 256 in
        List.iter
          (fun s ->
            List.iter
              (fun (k, v) ->
                match Hashtbl.find_opt writer (k, v) with
                | Some other ->
                    raise
                      (Inconclusive_because
                         (Printf.sprintf
                            "value %S on key %s written by both T%d and T%d \
                             (unique-value assumption broken)"
                            v k other s.s_txn.History.tid))
                | None -> Hashtbl.replace writer (k, v) s.s_txn.History.tid)
              s.s_writes)
          xs;
        (* Every observed value must trace to a recorded writer; a read of an
           aborted transaction's value is G1a. Observation of an
           indeterminate transaction's value proves it committed. *)
        let observed = Hashtbl.create 64 in
        let observed_on = Hashtbl.create 64 in
        let g1a = ref None in
        List.iter
          (fun s ->
            List.iter
              (fun (k, v) ->
                match v with
                | None -> ()
                | Some v -> (
                    match Hashtbl.find_opt writer (k, v) with
                    | None ->
                        raise
                          (Inconclusive_because
                             (Printf.sprintf
                                "T%d read value %S on key %s that no recorded \
                                 transaction wrote"
                                s.s_txn.History.tid v k))
                    | Some w ->
                        if w <> s.s_txn.History.tid then begin
                          Hashtbl.replace observed w ();
                          Hashtbl.replace observed_on (k, w) ();
                          let ws = Hashtbl.find by_tid w in
                          if ws.s_txn.History.t_status = History.T_aborted && !g1a = None
                          then g1a := Some (s, ws, k, v)
                        end))
              s.s_reads)
          xs;
        (match !g1a with
        | Some (reader, aborted, k, v) ->
            raise
              (Anomaly_found
                 ( G1a,
                   Printf.sprintf
                     "  %s\n  %s\n  committed read of key %s observed %S, written \
                      only by the aborted T%d\n"
                     (History.txn_to_string reader.s_txn)
                     (History.txn_to_string aborted.s_txn)
                     k v aborted.s_txn.History.tid ))
        | None -> ());
        (* Effective transactions: committed, plus indeterminate ones whose
           writes were observed (promoted). *)
        let effective =
          List.filter
            (fun s ->
              match s.s_txn.History.t_status with
              | History.T_committed _ -> true
              | History.T_aborted -> false
              | History.T_indeterminate _ -> Hashtbl.mem observed s.s_txn.History.tid)
            xs
        in
        let is_effective tid =
          match Hashtbl.find_opt by_tid tid with
          | None -> false
          | Some s -> (
              match s.s_txn.History.t_status with
              | History.T_committed _ -> true
              | History.T_aborted -> false
              | History.T_indeterminate _ -> Hashtbl.mem observed tid)
        in
        (* Per-key version order: effective writers sorted by commit
           timestamp. A promoted transaction with no recorded timestamp
           cannot be placed; its keys are excluded from ww/rw inference
           (sound: skipping edges only hides cycles). *)
        let keys = Hashtbl.create 64 in
        let unplaceable_keys = Hashtbl.create 8 in
        List.iter
          (fun s ->
            List.iter
              (fun (k, _) ->
                match commit_ts_of s.s_txn with
                | Some ts ->
                    let l =
                      match Hashtbl.find_opt keys k with
                      | Some l -> l
                      | None ->
                          let l = ref [] in
                          Hashtbl.replace keys k l;
                          l
                    in
                    l := (ts, s.s_txn.History.tid) :: !l
                | None -> Hashtbl.replace unplaceable_keys k ())
              s.s_writes)
          effective;
        let version_order = Hashtbl.create 64 in
        Hashtbl.iter
          (fun k l ->
            if not (Hashtbl.mem unplaceable_keys k) then begin
              let sorted = List.sort (fun (a, _) (b, _) -> Ts.compare a b) !l in
              (* Commit-timestamp ties never arise from the simulator
                 (same-key same-timestamp MVCC writes collide), but
                 hand-crafted histories can contain them: a pair of tied
                 versions is ordered by visibility — the version some other
                 transaction observed was installed last. Anything more
                 ambiguous cannot be ordered by evidence. *)
              let order_tied = function
                | [ t ] -> [ t ]
                | [ t1; t2 ] -> (
                    match
                      ( Hashtbl.mem observed_on (k, t1),
                        Hashtbl.mem observed_on (k, t2) )
                    with
                    | true, false -> [ t2; t1 ]
                    | false, true -> [ t1; t2 ]
                    | _ ->
                        raise
                          (Inconclusive_because
                             (Printf.sprintf
                                "T%d and T%d share a commit timestamp on key \
                                 %s and visibility does not order them"
                                t1 t2 k)))
                | t1 :: t2 :: _ ->
                    raise
                      (Inconclusive_because
                         (Printf.sprintf
                            "three or more transactions (T%d, T%d, ...) share \
                             a commit timestamp on key %s"
                            t1 t2 k))
                | [] -> []
              in
              let rec regroup = function
                | [] -> []
                | (ts, t) :: rest ->
                    let same, rest' =
                      List.partition (fun (ts', _) -> Ts.equal ts ts') rest
                    in
                    order_tied (t :: List.map snd same) @ regroup rest'
              in
              Hashtbl.replace version_order k (regroup sorted)
            end)
          keys;
        (* Dependency edges, deterministically ordered. *)
        let edges = ref [] in
        let add_edge src dst kind key =
          if src <> dst then edges := (src, dst, kind, key) :: !edges
        in
        let sorted_keys =
          List.sort String.compare
            (Hashtbl.fold (fun k _ acc -> k :: acc) version_order [])
        in
        (* ww: adjacent versions. *)
        List.iter
          (fun k ->
            let rec adj = function
              | a :: (b :: _ as rest) ->
                  add_edge a b E_ww k;
                  adj rest
              | _ -> ()
            in
            adj (Hashtbl.find version_order k))
          sorted_keys;
        List.iter
          (fun s ->
            List.iter
              (fun (k, v) ->
                (* wr: the writer of the observed version precedes us. *)
                (match v with
                | Some v -> (
                    match Hashtbl.find_opt writer (k, v) with
                    | Some w when is_effective w -> add_edge w s.s_txn.History.tid E_wr k
                    | _ -> ())
                | None -> ());
                (* rw: the writer of the observed version's immediate
                   successor follows us. *)
                match Hashtbl.find_opt version_order k with
                | None -> ()
                | Some order -> (
                    let observed_writer =
                      match v with
                      | None -> None  (* the initial nil version *)
                      | Some v -> Hashtbl.find_opt writer (k, v)
                    in
                    match observed_writer with
                    | Some w when not (List.mem w order) -> ()
                    | _ -> (
                        let rec successor = function
                          | [] -> None
                          | hd :: _ when observed_writer = None -> Some hd
                          | hd :: tl when Some hd = observed_writer -> (
                              match tl with [] -> None | nxt :: _ -> Some nxt)
                          | _ :: tl -> successor tl
                        in
                        match successor order with
                        | Some nxt -> add_edge s.s_txn.History.tid nxt E_rw k
                        | None -> ())))
              s.s_reads)
          effective;
        let tids =
          List.sort compare (List.map (fun s -> s.s_txn.History.tid) effective)
        in
        let adj = Hashtbl.create 64 in
        List.iter
          (fun (src, dst, kind, key) ->
            let l = try Hashtbl.find adj src with Not_found -> [] in
            if not (List.mem (dst, kind, key) l) then
              Hashtbl.replace adj src ((dst, kind, key) :: l))
          (List.rev !edges);
        let adj_keys = Hashtbl.fold (fun k _ acc -> k :: acc) adj [] in
        List.iter
          (fun k -> Hashtbl.replace adj k (List.sort compare (Hashtbl.find adj k)))
          adj_keys;
        let render_cycle cycle =
          let buf = Buffer.create 256 in
          Buffer.add_string buf "  cycle: ";
          List.iteri
            (fun i (tid, kind, key) ->
              if i > 0 then Buffer.add_string buf " ";
              Buffer.add_string buf
                (Printf.sprintf "T%d --%s(%s)-->" tid (edge_kind_to_string kind) key))
            cycle;
          (match cycle with
          | (tid, _, _) :: _ -> Buffer.add_string buf (Printf.sprintf " T%d" tid)
          | [] -> ());
          Buffer.add_char buf '\n';
          List.iter
            (fun (tid, _, _) ->
              let s = Hashtbl.find by_tid tid in
              Buffer.add_string buf
                (Printf.sprintf "    %s\n" (History.txn_to_string s.s_txn)))
            cycle;
          Buffer.contents buf
        in
        let wrote_key tid k =
          match Hashtbl.find_opt by_tid tid with
          | None -> false
          | Some s -> List.mem_assoc k s.s_writes
        in
        let classify_and_report kinds anomaly_of =
          match shortest_cycle ~kinds adj tids with
          | None -> None
          | Some cycle ->
              let a = anomaly_of cycle in
              Some
                ( Some a,
                  Violation
                    {
                      message =
                        Printf.sprintf "history is not serializable: %s"
                          (anomaly_to_string a);
                      counterexample = render_cycle cycle;
                    } )
        in
        let result =
          match classify_and_report [ E_ww ] (fun _ -> G0) with
          | Some r -> Some r
          | None -> (
              match classify_and_report [ E_ww; E_wr ] (fun _ -> G1c) with
              | Some r -> Some r
              | None ->
                  classify_and_report
                    [ E_ww; E_wr; E_rw ]
                    (fun cycle ->
                      (* A lost update is an anti-dependency cycle whose
                         reader proceeded from a version of a key it also
                         wrote: r1(x) ... w2(x) ... w1(x). *)
                      if
                        List.exists
                          (fun (tid, kind, key) -> kind = E_rw && wrote_key tid key)
                          cycle
                      then Lost_update
                      else G2_item))
        in
        match result with
        | Some (a, v) -> (a, v)
        | None -> (None, Valid { ops = List.length effective })
      with
      | Inconclusive_because msg -> (None, Inconclusive msg)
      | Anomaly_found (a, counterexample) ->
          ( Some a,
            Violation
              {
                message =
                  Printf.sprintf "history is not serializable: %s" (anomaly_to_string a);
                counterexample;
              } ))

let check_serializable history = snd (check_serializable_report history)
