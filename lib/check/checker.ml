type verdict =
  | Valid of { ops : int }
  | Violation of { message : string; counterexample : string }
  | Inconclusive of string

let is_valid = function Valid _ -> true | Violation _ | Inconclusive _ -> false

let verdict_to_string = function
  | Valid { ops } -> Printf.sprintf "valid (%d ops checked)" ops
  | Violation { message; counterexample } ->
      Printf.sprintf "VIOLATION: %s\n%s" message counterexample
  | Inconclusive msg -> Printf.sprintf "inconclusive: %s" msg

(* ------------------------------------------------------------------ *)
(* Per-key linearizability (Wing–Gong search)                          *)

(* One operation of a single register's sub-history. [l_completed] is
   [max_int] for operations with unknown outcome; [l_optional] marks writes
   that may never have taken effect and are allowed to linearize as no-ops. *)
type lop = {
  l_entry : History.entry;
  l_invoked : int;
  l_completed : int;
  l_kind : [ `Read of string option | `Write of string ];
  l_optional : bool;
}

exception Linearized

(* The search explores linearization prefixes: a state is (set of linearized
   ops, register value). An op may be appended when its invocation does not
   follow the completion of any other un-linearized op (Wing & Gong's rule);
   reads must match the register. States are memoized so the search is
   polynomial on the mostly-sequential histories the simulator produces. *)
let search_key ~budget ops =
  let n = Array.length ops in
  let mandatory = ref 0 in
  Array.iter (fun o -> if not o.l_optional then incr mandatory) ops;
  let mandatory = !mandatory in
  let visited = Hashtbl.create 1024 in
  let explored = ref 0 in
  let best_count = ref (-1) in
  let best_set = ref (Bytes.create 0) in
  let best_value = ref None in
  let in_set set i = Char.code (Bytes.get set (i / 8)) land (1 lsl (i mod 8)) <> 0 in
  let add set i =
    let set = Bytes.copy set in
    Bytes.set set (i / 8)
      (Char.chr (Char.code (Bytes.get set (i / 8)) lor (1 lsl (i mod 8))));
    set
  in
  let rec go set value done_mandatory =
    if done_mandatory = mandatory then raise Linearized;
    let memo_key = (Bytes.to_string set, value) in
    if not (Hashtbl.mem visited memo_key) then begin
      Hashtbl.replace visited memo_key ();
      incr explored;
      if !explored > budget then failwith "budget";
      if done_mandatory > !best_count then begin
        best_count := done_mandatory;
        best_set := Bytes.copy set;
        best_value := value
      end;
      let min_end = ref max_int in
      for i = 0 to n - 1 do
        if (not (in_set set i)) && ops.(i).l_completed < !min_end then
          min_end := ops.(i).l_completed
      done;
      for i = 0 to n - 1 do
        if (not (in_set set i)) && ops.(i).l_invoked <= !min_end then begin
          let bump = if ops.(i).l_optional then 0 else 1 in
          (match ops.(i).l_kind with
          | `Write v -> go (add set i) (Some v) (done_mandatory + bump)
          | `Read v -> if v = value then go (add set i) value (done_mandatory + bump));
          (* An unknown-outcome write may also never have happened. *)
          if ops.(i).l_optional then go (add set i) value done_mandatory
        end
      done
    end
  in
  let set0 = Bytes.make ((n / 8) + 1) '\000' in
  match go set0 None 0 with
  | () ->
      let remaining =
        List.filter (fun i -> not (in_set !best_set i)) (List.init n Fun.id)
      in
      `Violation (!best_count, mandatory, !best_value, remaining)
  | exception Linearized -> `Ok
  | exception Failure _ -> `Budget

let lops_of_entries entries =
  List.filter_map
    (fun (e : History.entry) ->
      let mk kind optional completed =
        Some
          {
            l_entry = e;
            l_invoked = e.History.invoked;
            l_completed = completed;
            l_kind = kind;
            l_optional = optional;
          }
      in
      match (e.History.op, e.History.outcome) with
      | History.Read _, Some (History.Ok_read v) -> mk (`Read v) false e.History.completed
      | History.Read _, _ ->
          (* A failed or unresolved read returned nothing: no constraint. *)
          None
      | History.Write { value; _ }, Some History.Ok_write ->
          mk (`Write value) false e.History.completed
      | History.Write _, Some (History.Failed _) -> None
      | History.Write { value; _ }, (Some (History.Info _) | None) ->
          (* Unknown outcome: may take effect at any point after invocation,
             or never. *)
          mk (`Write value) true max_int
      | History.Write _, Some _ -> None
      | (History.Transfer _ | History.Snapshot), _ -> None)
    entries

let render_violation key ops (count, mandatory, value, remaining) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "key %s: best linearization covers %d/%d committed ops; register then held %s\n"
       key count mandatory
       (match value with None -> "nil" | Some v -> Printf.sprintf "%S" v));
  Buffer.add_string buf "  un-linearizable suffix:\n";
  List.iteri
    (fun i idx ->
      if i < 8 then
        Buffer.add_string buf
          (Printf.sprintf "    %s\n" (History.entry_to_string ops.(idx).l_entry)))
    remaining;
  if List.length remaining > 8 then
    Buffer.add_string buf
      (Printf.sprintf "    ... and %d more\n" (List.length remaining - 8));
  Buffer.contents buf

let check_linearizable ?(budget = 2_000_000) history =
  let by_key = Hashtbl.create 64 in
  List.iter
    (fun (e : History.entry) ->
      match e.History.op with
      | History.Read { key } | History.Write { key; _ } ->
          let l =
            match Hashtbl.find_opt by_key key with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.replace by_key key l;
                l
          in
          l := e :: !l
      | History.Transfer _ | History.Snapshot -> ())
    (History.entries history);
  let keys = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) by_key []) in
  let checked = ref 0 in
  let result =
    List.fold_left
      (fun acc key ->
        match acc with
        | Some _ -> acc
        | None -> (
            let entries = List.rev !(Hashtbl.find by_key key) in
            let ops = Array.of_list (lops_of_entries entries) in
            checked := !checked + Array.length ops;
            match search_key ~budget ops with
            | `Ok -> None
            | `Budget ->
                Some
                  (Inconclusive
                     (Printf.sprintf "key %s: search budget (%d states) exhausted" key budget))
            | `Violation v ->
                Some
                  (Violation
                     {
                       message = Printf.sprintf "history is not linearizable at key %s" key;
                       counterexample = render_violation key ops v;
                     })))
      None keys
  in
  match result with None -> Valid { ops = !checked } | Some v -> v

(* ------------------------------------------------------------------ *)
(* Bank-transfer serializability invariant                             *)

(* Generalizes test_txn's bank test: transfers move money between accounts
   inside serializable transactions, so every transactional snapshot of all
   accounts must observe the same total. A snapshot summing to anything else
   exhibits a non-serializable read (e.g. it observed half of a transfer). *)
let check_bank ~total history =
  let snapshots = ref 0 and transfers = ref 0 in
  let bad =
    List.fold_left
      (fun acc (e : History.entry) ->
        match (acc, e.History.op, e.History.outcome) with
        | Some _, _, _ -> acc
        | None, History.Transfer _, Some History.Ok_transfer ->
            incr transfers;
            acc
        | None, History.Snapshot, Some (History.Ok_snapshot rows) ->
            incr snapshots;
            let sum = List.fold_left (fun s (_, b) -> s + b) 0 rows in
            if sum = total then acc else Some (e, sum)
        | None, _, _ -> acc)
      None (History.entries history)
  in
  match bad with
  | None -> Valid { ops = !snapshots + !transfers }
  | Some (e, sum) ->
      Violation
        {
          message =
            Printf.sprintf
              "bank invariant broken: snapshot totals %d, expected %d (money %s)"
              sum total
              (if sum < total then "destroyed" else "created");
          counterexample = Printf.sprintf "  %s\n" (History.entry_to_string e);
        }
