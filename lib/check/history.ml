module Vec = Crdb_stdx.Vec
module Ts = Crdb_hlc.Timestamp

type op =
  | Read of { key : string }
  | Write of { key : string; value : string }
  | Transfer of { src : string; dst : string; amount : int }
  | Snapshot

type outcome =
  | Ok_read of string option
  | Ok_write
  | Ok_transfer
  | Ok_snapshot of (string * int) list
  | Failed of string
  | Info of string

type entry = {
  id : int;
  client : int;
  op : op;
  invoked : int;
  mutable completed : int;
  mutable outcome : outcome option;
}

type txn_op =
  | T_read of { key : string; value : string option }
  | T_write of { key : string; value : string }

type txn_status =
  | T_committed of { commit_ts : Ts.t }
  | T_aborted
  | T_indeterminate of { commit_ts : Ts.t option }

type txn = {
  tid : int;
  t_client : int;
  t_began : int;
  t_ended : int;
  t_ops : txn_op list;
  t_status : txn_status;
}

type t = { entries : entry Vec.t; txns : txn Vec.t }

let create () = { entries = Vec.create (); txns = Vec.create () }
let length t = Vec.length t.entries
let entries t = Vec.to_list t.entries

let record_txn t ~tid ~client ~began ~ended ~ops ~status =
  Vec.push t.txns
    { tid; t_client = client; t_began = began; t_ended = ended; t_ops = ops; t_status = status }

let txns t = Vec.to_list t.txns
let num_txns t = Vec.length t.txns

let invoke t ~client ~now op =
  let e =
    { id = Vec.length t.entries; client; op; invoked = now; completed = -1; outcome = None }
  in
  Vec.push t.entries e;
  e

let complete e ~now outcome =
  e.completed <- now;
  e.outcome <- Some outcome

let op_to_string = function
  | Read { key } -> Printf.sprintf "read(%s)" key
  | Write { key; value } -> Printf.sprintf "write(%s, %s)" key value
  | Transfer { src; dst; amount } -> Printf.sprintf "transfer(%s -> %s, %d)" src dst amount
  | Snapshot -> "snapshot"

let outcome_to_string = function
  | Ok_read None -> "ok nil"
  | Ok_read (Some v) -> Printf.sprintf "ok %s" v
  | Ok_write -> "ok"
  | Ok_transfer -> "ok"
  | Ok_snapshot rows ->
      Printf.sprintf "ok {%s}"
        (String.concat ", "
           (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) rows))
  | Failed msg -> Printf.sprintf "failed (%s)" msg
  | Info msg -> Printf.sprintf "info (%s)" msg

let entry_to_string e =
  let completion =
    match e.outcome with
    | None -> "info (pending at history end)"
    | Some o -> outcome_to_string o
  in
  let completed = if e.completed < 0 then "-" else string_of_int e.completed in
  Printf.sprintf "[%6d, %6s] c%d #%d %-28s %s"
    e.invoked completed e.client e.id (op_to_string e.op) completion

let to_string t =
  String.concat "\n" (List.map entry_to_string (entries t))

let txn_op_to_string = function
  | T_read { key; value } ->
      Printf.sprintf "r(%s)=%s" key (match value with None -> "nil" | Some v -> v)
  | T_write { key; value } -> Printf.sprintf "w(%s)=%s" key value

let txn_status_to_string = function
  | T_committed { commit_ts } -> Printf.sprintf "committed@%s" (Ts.to_string commit_ts)
  | T_aborted -> "aborted"
  | T_indeterminate { commit_ts = None } -> "indeterminate"
  | T_indeterminate { commit_ts = Some ts } ->
      Printf.sprintf "indeterminate@%s" (Ts.to_string ts)

let txn_to_string x =
  Printf.sprintf "[%6d, %6d] c%d T%d %-24s %s" x.t_began x.t_ended x.t_client
    x.tid
    (txn_status_to_string x.t_status)
    (String.concat " " (List.map txn_op_to_string x.t_ops))

let txns_to_string t =
  String.concat "\n" (List.map txn_to_string (txns t))

(* ------------------------------------------------------------------ *)
(* Serialization: one line per record, space-separated tokens, strings
   quoted with OCaml escapes ([%S] / [Scanf.unescaped]). The format is
   versioned so dumped histories from old binaries fail loudly instead of
   parsing wrong. *)

let header = "crdb-history v1"

let bprint_string buf s = Buffer.add_string buf (Printf.sprintf " %S" s)

let serialize_entry buf (e : entry) =
  Buffer.add_string buf
    (Printf.sprintf "entry %d %d %d %d" e.id e.client e.invoked e.completed);
  (match e.op with
  | Read { key } ->
      Buffer.add_string buf " read";
      bprint_string buf key
  | Write { key; value } ->
      Buffer.add_string buf " write";
      bprint_string buf key;
      bprint_string buf value
  | Transfer { src; dst; amount } ->
      Buffer.add_string buf " transfer";
      bprint_string buf src;
      bprint_string buf dst;
      Buffer.add_string buf (Printf.sprintf " %d" amount)
  | Snapshot -> Buffer.add_string buf " snapshot");
  (match e.outcome with
  | None -> Buffer.add_string buf " pending"
  | Some (Ok_read None) -> Buffer.add_string buf " ok_read_nil"
  | Some (Ok_read (Some v)) ->
      Buffer.add_string buf " ok_read";
      bprint_string buf v
  | Some Ok_write -> Buffer.add_string buf " ok_write"
  | Some Ok_transfer -> Buffer.add_string buf " ok_transfer"
  | Some (Ok_snapshot rows) ->
      Buffer.add_string buf (Printf.sprintf " ok_snapshot %d" (List.length rows));
      List.iter
        (fun (k, b) ->
          bprint_string buf k;
          Buffer.add_string buf (Printf.sprintf " %d" b))
        rows
  | Some (Failed m) ->
      Buffer.add_string buf " failed";
      bprint_string buf m
  | Some (Info m) ->
      Buffer.add_string buf " info";
      bprint_string buf m);
  Buffer.add_char buf '\n'

let serialize_txn buf (x : txn) =
  Buffer.add_string buf
    (Printf.sprintf "txn %d %d %d %d" x.tid x.t_client x.t_began x.t_ended);
  (match x.t_status with
  | T_committed { commit_ts } ->
      Buffer.add_string buf
        (Printf.sprintf " committed %d %d" (Ts.wall commit_ts) (Ts.logical commit_ts))
  | T_aborted -> Buffer.add_string buf " aborted"
  | T_indeterminate { commit_ts = None } -> Buffer.add_string buf " indet"
  | T_indeterminate { commit_ts = Some ts } ->
      Buffer.add_string buf
        (Printf.sprintf " indet_at %d %d" (Ts.wall ts) (Ts.logical ts)));
  List.iter
    (fun op ->
      match op with
      | T_read { key; value = None } ->
          Buffer.add_string buf " rn";
          bprint_string buf key
      | T_read { key; value = Some v } ->
          Buffer.add_string buf " rv";
          bprint_string buf key;
          bprint_string buf v
      | T_write { key; value } ->
          Buffer.add_string buf " w";
          bprint_string buf key;
          bprint_string buf value)
    x.t_ops;
  Buffer.add_char buf '\n'

let serialize t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Vec.iter (serialize_entry buf) t.entries;
  Vec.iter (serialize_txn buf) t.txns;
  Buffer.contents buf

(* Split a line into tokens; a token starting with '"' extends to its
   unescaped closing quote and is returned decoded. *)
let tokenize line =
  let n = String.length line in
  let rec skip i = if i < n && line.[i] = ' ' then skip (i + 1) else i in
  let rec quoted_end i =
    (* index of the closing quote, honoring backslash escapes *)
    if i >= n then failwith "unterminated string"
    else if line.[i] = '\\' then quoted_end (i + 2)
    else if line.[i] = '"' then i
    else quoted_end (i + 1)
  in
  let rec go acc i =
    let i = skip i in
    if i >= n then List.rev acc
    else if line.[i] = '"' then begin
      let e = quoted_end (i + 1) in
      let tok = Scanf.unescaped (String.sub line (i + 1) (e - i - 1)) in
      go (tok :: acc) (e + 1)
    end
    else begin
      let j = ref i in
      while !j < n && line.[!j] <> ' ' do incr j done;
      go (String.sub line i (!j - i) :: acc) !j
    end
  in
  go [] 0

exception Parse of string

let int_tok s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> raise (Parse (Printf.sprintf "expected integer, got %S" s))

let parse_entry t = function
  | id :: client :: invoked :: completed :: rest ->
      let id = int_tok id and client = int_tok client in
      let invoked = int_tok invoked and completed = int_tok completed in
      let op, rest =
        match rest with
        | "read" :: key :: rest -> (Read { key }, rest)
        | "write" :: key :: value :: rest -> (Write { key; value }, rest)
        | "transfer" :: src :: dst :: amount :: rest ->
            (Transfer { src; dst; amount = int_tok amount }, rest)
        | "snapshot" :: rest -> (Snapshot, rest)
        | _ -> raise (Parse "bad entry op")
      in
      let outcome =
        match rest with
        | [ "pending" ] -> None
        | [ "ok_read_nil" ] -> Some (Ok_read None)
        | [ "ok_read"; v ] -> Some (Ok_read (Some v))
        | [ "ok_write" ] -> Some Ok_write
        | [ "ok_transfer" ] -> Some Ok_transfer
        | "ok_snapshot" :: _count :: rows ->
            let rec pairs = function
              | [] -> []
              | k :: b :: rest -> (k, int_tok b) :: pairs rest
              | _ -> raise (Parse "odd snapshot row list")
            in
            Some (Ok_snapshot (pairs rows))
        | [ "failed"; m ] -> Some (Failed m)
        | [ "info"; m ] -> Some (Info m)
        | _ -> raise (Parse "bad entry outcome")
      in
      if id <> Vec.length t.entries then raise (Parse "entry ids out of order");
      Vec.push t.entries { id; client; op; invoked; completed; outcome }
  | _ -> raise (Parse "truncated entry")

let parse_txn t = function
  | tid :: client :: began :: ended :: rest ->
      let tid = int_tok tid and client = int_tok client in
      let began = int_tok began and ended = int_tok ended in
      let status, rest =
        match rest with
        | "committed" :: w :: l :: rest ->
            (T_committed { commit_ts = Ts.make ~wall:(int_tok w) ~logical:(int_tok l) }, rest)
        | "aborted" :: rest -> (T_aborted, rest)
        | "indet" :: rest -> (T_indeterminate { commit_ts = None }, rest)
        | "indet_at" :: w :: l :: rest ->
            ( T_indeterminate
                { commit_ts = Some (Ts.make ~wall:(int_tok w) ~logical:(int_tok l)) },
              rest )
        | _ -> raise (Parse "bad txn status")
      in
      let rec ops = function
        | [] -> []
        | "rn" :: key :: rest -> T_read { key; value = None } :: ops rest
        | "rv" :: key :: v :: rest -> T_read { key; value = Some v } :: ops rest
        | "w" :: key :: v :: rest -> T_write { key; value = v } :: ops rest
        | _ -> raise (Parse "bad txn op")
      in
      record_txn t ~tid ~client ~began ~ended ~ops:(ops rest)
        ~status
  | _ -> raise (Parse "truncated txn")

let deserialize s =
  let lines = String.split_on_char '\n' s in
  match lines with
  | hd :: rest when String.trim hd = header -> (
      let t = create () in
      try
        List.iteri
          (fun lineno line ->
            if String.trim line <> "" then
              match tokenize line with
              | "entry" :: fields -> parse_entry t fields
              | "txn" :: fields -> parse_txn t fields
              | tag :: _ ->
                  raise (Parse (Printf.sprintf "line %d: unknown record %S" (lineno + 2) tag))
              | [] -> ())
          rest;
        Ok t
      with
      | Parse msg -> Error msg
      | Failure msg -> Error msg
      | Scanf.Scan_failure msg -> Error msg)
  | hd :: _ -> Error (Printf.sprintf "bad header %S (expected %S)" (String.trim hd) header)
  | [] -> Error "empty input"
