module Vec = Crdb_stdx.Vec

type op =
  | Read of { key : string }
  | Write of { key : string; value : string }
  | Transfer of { src : string; dst : string; amount : int }
  | Snapshot

type outcome =
  | Ok_read of string option
  | Ok_write
  | Ok_transfer
  | Ok_snapshot of (string * int) list
  | Failed of string
  | Info of string

type entry = {
  id : int;
  client : int;
  op : op;
  invoked : int;
  mutable completed : int;
  mutable outcome : outcome option;
}

type t = { entries : entry Vec.t }

let create () = { entries = Vec.create () }
let length t = Vec.length t.entries
let entries t = Vec.to_list t.entries

let invoke t ~client ~now op =
  let e =
    { id = Vec.length t.entries; client; op; invoked = now; completed = -1; outcome = None }
  in
  Vec.push t.entries e;
  e

let complete e ~now outcome =
  e.completed <- now;
  e.outcome <- Some outcome

let op_to_string = function
  | Read { key } -> Printf.sprintf "read(%s)" key
  | Write { key; value } -> Printf.sprintf "write(%s, %s)" key value
  | Transfer { src; dst; amount } -> Printf.sprintf "transfer(%s -> %s, %d)" src dst amount
  | Snapshot -> "snapshot"

let outcome_to_string = function
  | Ok_read None -> "ok nil"
  | Ok_read (Some v) -> Printf.sprintf "ok %s" v
  | Ok_write -> "ok"
  | Ok_transfer -> "ok"
  | Ok_snapshot rows ->
      Printf.sprintf "ok {%s}"
        (String.concat ", "
           (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) rows))
  | Failed msg -> Printf.sprintf "failed (%s)" msg
  | Info msg -> Printf.sprintf "info (%s)" msg

let entry_to_string e =
  let completion =
    match e.outcome with
    | None -> "info (pending at history end)"
    | Some o -> outcome_to_string o
  in
  let completed = if e.completed < 0 then "-" else string_of_int e.completed in
  Printf.sprintf "[%6d, %6s] c%d #%d %-28s %s"
    e.invoked completed e.client e.id (op_to_string e.op) completion

let to_string t =
  String.concat "\n" (List.map entry_to_string (entries t))
