module Vec = Crdb_stdx.Vec

type t = { samples : int Vec.t; mutable sorted : bool }

let create () = { samples = Vec.create (); sorted = true }

let add t v =
  Vec.push t.samples v;
  t.sorted <- false

let count t = Vec.length t.samples
let is_empty t = count t = 0

let ensure_sorted t =
  if not t.sorted then begin
    let arr = Array.of_list (Vec.to_list t.samples) in
    Array.sort Int.compare arr;
    Vec.clear t.samples;
    Array.iter (Vec.push t.samples) arr;
    t.sorted <- true
  end

let min_value t =
  ensure_sorted t;
  if is_empty t then 0 else Vec.get t.samples 0

let max_value t =
  ensure_sorted t;
  if is_empty t then 0 else Vec.get t.samples (count t - 1)

let mean t =
  if is_empty t then 0.0
  else begin
    let sum = ref 0.0 in
    Vec.iter (fun v -> sum := !sum +. float_of_int v) t.samples;
    !sum /. float_of_int (count t)
  end

let percentile t p =
  if is_empty t then 0
  else begin
    ensure_sorted t;
    let n = count t in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let idx = if rank <= 0 then 0 else if rank > n then n - 1 else rank - 1 in
    Vec.get t.samples idx
  end

let p50 t = percentile t 50.0
let p90 t = percentile t 90.0
let p99 t = percentile t 99.0

let to_json t =
  Printf.sprintf
    "{\"count\":%d,\"mean\":%.1f,\"min\":%d,\"p50\":%d,\"p90\":%d,\"p99\":%d,\"max\":%d}"
    (count t) (mean t) (min_value t) (p50 t) (p90 t) (p99 t) (max_value t)

type boxplot = {
  p25 : int;
  p50 : int;
  p75 : int;
  whisker_lo : int;
  whisker_hi : int;
}

let boxplot t =
  ensure_sorted t;
  let p25 = percentile t 25.0
  and p50 = percentile t 50.0
  and p75 = percentile t 75.0 in
  let iqr = p75 - p25 in
  let lo_bound = p25 - (3 * iqr / 2) and hi_bound = p75 + (3 * iqr / 2) in
  let n = count t in
  let whisker_lo = ref p25 and whisker_hi = ref p75 in
  for i = 0 to n - 1 do
    let v = Vec.get t.samples i in
    if v >= lo_bound && v < !whisker_lo then whisker_lo := v;
    if v <= hi_bound && v > !whisker_hi then whisker_hi := v
  done;
  { p25; p50; p75; whisker_lo = !whisker_lo; whisker_hi = !whisker_hi }

let cdf t percentiles = List.map (fun p -> (p, percentile t p)) percentiles

let merge_into ~dst src =
  Vec.iter (fun v -> add dst v) src.samples

let pp_ms ppf micros = Format.fprintf ppf "%7.1f" (float_of_int micros /. 1000.0)

let pp_row ~label ppf t =
  if is_empty t then Format.fprintf ppf "%-34s (no samples)" label
  else
    Format.fprintf ppf
      "%-34s n=%-7d mean=%a p25=%a p50=%a p75=%a p90=%a p99=%a max=%a" label
      (count t) pp_ms
      (int_of_float (mean t))
      pp_ms (percentile t 25.0) pp_ms (percentile t 50.0) pp_ms
      (percentile t 75.0) pp_ms (percentile t 90.0) pp_ms (percentile t 99.0)
      pp_ms (max_value t)
