(** Latency histograms and distribution summaries for the benchmark
    harness. Samples are microseconds. *)

type t

val create : unit -> t
val add : t -> int -> unit
val count : t -> int
val is_empty : t -> bool
val min_value : t -> int
val max_value : t -> int
val mean : t -> float

val percentile : t -> float -> int
(** [percentile t p] for [p] in [\[0, 100\]] (nearest-rank). 0 on empty. *)

val p50 : t -> int
val p90 : t -> int
val p99 : t -> int

val to_json : t -> string
(** [{"count":n,"mean":μ,"min":..,"p50":..,"p90":..,"p99":..,"max":..}],
    values in microseconds. *)

type boxplot = {
  p25 : int;
  p50 : int;
  p75 : int;
  whisker_lo : int;  (** lowest sample within 1.5 IQR below p25 *)
  whisker_hi : int;  (** highest sample within 1.5 IQR above p75 *)
}

val boxplot : t -> boxplot
(** The Fig. 3 box summary. *)

val cdf : t -> float list -> (float * int) list
(** [(p, latency)] pairs for the requested percentiles (Fig. 5). *)

val merge_into : dst:t -> t -> unit

val pp_ms : Format.formatter -> int -> unit
(** Render microseconds as milliseconds with one decimal. *)

val pp_row : label:string -> Format.formatter -> t -> unit
(** One summary line: count, mean, p25/50/75/90/99, max (milliseconds). *)
