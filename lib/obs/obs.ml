type t = { trace : Trace.t; metrics : Metrics.t }

let create ~now () = { trace = Trace.create ~now (); metrics = Metrics.create () }
let trace t = t.trace
let metrics t = t.metrics
let enable_tracing t = Trace.enable t.trace
let disable_tracing t = Trace.disable t.trace
let tracing_enabled t = Trace.is_enabled t.trace

(* A shared sink for components constructed without an explicit observability
   context (unit tests, standalone experiments): metrics still accumulate,
   tracing stays off, and all timestamps read as 0. *)
let null = create ~now:(fun () -> 0) ()
