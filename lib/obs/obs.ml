type t = {
  trace : Trace.t;
  metrics : Metrics.t;
  events : Events.t;
  timeseries : Timeseries.t;
}

let create ~now ?bucket_width ?num_buckets () =
  {
    trace = Trace.create ~now ();
    metrics = Metrics.create ();
    events = Events.create ~now ();
    timeseries = Timeseries.create ~now ?bucket_width ?num_buckets ();
  }

let trace t = t.trace
let metrics t = t.metrics
let events t = t.events
let timeseries t = t.timeseries
let enable_tracing t = Trace.enable t.trace
let disable_tracing t = Trace.disable t.trace
let tracing_enabled t = Trace.is_enabled t.trace

(* The pre-existing ad-hoc trace event name for each structured kind, kept
   so enabling tracing still yields the familiar instants alongside the
   typed log. *)
let trace_name = function
  | Events.Split -> "kv.split"
  | Events.Merge -> "kv.merge"
  | Events.Rebalance -> "kv.rebalance"
  | Events.Lease_transfer -> "kv.lease_transfer"
  | Events.Lease_acquired -> "kv.lease_acquired"
  | Events.Wound -> "kv.wound"
  | Events.Abandoned_cleanup -> "kv.abandoned_cleanup"
  | Events.Txn_staged -> "kv.txn_staged"
  | Events.Txn_recovered -> "kv.txn_recovered"
  | Events.Fault -> "chaos.inject"
  | Events.Heal -> "chaos.heal"
  | Events.Split_queued -> "autopilot.split_queued"
  | Events.Merge_queued -> "autopilot.merge_queued"
  | Events.Lease_moved -> "autopilot.lease_moved"
  | Events.Queue_skipped -> "autopilot.queue_skipped"

let log_event t ?node ?range ?txn ?(attrs = []) kind =
  Events.log t.events ?node ?range ?txn ~attrs kind;
  Trace.event t.trace ?node ?range ?txn ~attrs (trace_name kind)

(* A shared sink for components constructed without an explicit observability
   context (unit tests, standalone experiments): metrics still accumulate,
   tracing stays off, and all timestamps read as 0. *)
let null = create ~now:(fun () -> 0) ()
