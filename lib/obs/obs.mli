(** The observability context: one {!Trace} recorder plus one {!Metrics}
    registry, created by the cluster and threaded through the transport,
    Raft, KV, and transaction layers. *)

type t

val create : now:(unit -> int) -> unit -> t
val trace : t -> Trace.t
val metrics : t -> Metrics.t
val enable_tracing : t -> unit
val disable_tracing : t -> unit
val tracing_enabled : t -> bool

val null : t
(** Shared default context for components built without one: counters work
    (and are shared globally), tracing is permanently disabled, span
    timestamps read as 0. *)
