(** The observability context: one {!Trace} recorder, one {!Metrics}
    registry, one structured {!Events} log and one windowed {!Timeseries}
    store, created by the cluster and threaded through the transport, Raft,
    KV, and transaction layers. *)

type t

val create :
  now:(unit -> int) -> ?bucket_width:int -> ?num_buckets:int -> unit -> t
(** [bucket_width]/[num_buckets] configure the {!Timeseries} ring (defaults:
    1 s × 60). *)

val trace : t -> Trace.t
val metrics : t -> Metrics.t
val events : t -> Events.t
val timeseries : t -> Timeseries.t
val enable_tracing : t -> unit
val disable_tracing : t -> unit
val tracing_enabled : t -> bool

val log_event :
  t ->
  ?node:int ->
  ?range:int ->
  ?txn:int ->
  ?attrs:(string * string) list ->
  Events.kind ->
  unit
(** Append to the structured event log, and mirror the event into the trace
    (under the historical instant-event name, e.g. [kv.split]) when tracing
    is enabled. *)

val null : t
(** Shared default context for components built without one: counters work
    (and are shared globally), tracing is permanently disabled, span
    timestamps read as 0. *)
