(** Deterministic end-of-run introspection report.

    Renders, purely from an {!Obs.t}: the per-phase latency table per op
    class (from the [phase.<cls>.<phase>] histograms), measured WAN round
    trips per class against the §6 model's predictions (from
    [wan_rtts.<cls>]), the hottest ranges by sliding-window QPS (from the
    [kv.range.*] timeseries), and the structured event log. Every source
    accumulates deterministically in simulated time, so the rendering is
    byte-identical across runs of the same seed — the report doubles as a
    regression artifact, like the Chrome trace export. *)

val qps_series : string
(** ["kv.range.qps"] — the per-range QPS series name the KV layer feeds. *)

val write_bytes_series : string
(** ["kv.range.write_bytes"]. *)

val latency_series : string
(** ["kv.range.latency"] — per-range request latency samples (micros). *)

val pp :
  ?predicted:(string * int) list ->
  ?top:int ->
  ?timeline:bool ->
  Format.formatter ->
  Obs.t ->
  unit
(** [predicted] maps op-class names to the model's WAN round-trip count; a
    class within ±1 of its prediction renders [ok], otherwise [MISMATCH].
    [top] bounds the hottest-ranges table (default 5). [timeline] (default
    true) appends the full event timeline. *)

val to_string :
  ?predicted:(string * int) list ->
  ?top:int ->
  ?timeline:bool ->
  Obs.t ->
  string

val pp_phase_table : Format.formatter -> Metrics.t -> unit
val pp_wan_table :
  ?predicted:(string * int) list -> Format.formatter -> Metrics.t -> unit
val pp_hot_ranges : ?top:int -> Format.formatter -> Timeseries.t -> unit

val phase_classes : Metrics.t -> string list
(** Op classes discovered from the [phase.*] registry entries, sorted. *)

val wan_classes : Metrics.t -> string list
