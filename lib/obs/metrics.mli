(** Named counters, gauges, and latency histograms, scoped per node and/or
    per range.

    A metric is identified by [(name, node?, range?)]; asking for the same
    scope twice returns the same underlying cell, so call sites can hold on
    to the handle and skip the table lookup on hot paths. All read-side
    operations ({!pp}, {!to_json}, {!total}) iterate in sorted scope order,
    so dumps are deterministic. *)

type t

val create : unit -> t

type counter
type gauge

val counter : t -> ?node:int -> ?range:int -> string -> counter
(** Find or register the counter with this scope.
    @raise Invalid_argument if the scope names a non-counter metric. *)

val gauge : t -> ?node:int -> ?range:int -> string -> gauge
val histogram : t -> ?node:int -> ?range:int -> string -> Crdb_stats.Hist.t

val inc : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val set : gauge -> int -> unit

val total : t -> string -> int
(** Sum of a metric across all scopes: counter/gauge values, or sample
    counts for histograms. *)

val merged_hist : t -> string -> Crdb_stats.Hist.t
(** All samples of the named histogram across scopes, merged into a fresh
    histogram. *)

val names : t -> string list
(** Distinct metric names, sorted. *)

val pp : Format.formatter -> t -> unit
(** One line per metric, sorted by (name, node, range). *)

val to_json : t -> string
(** JSON array of [{name, node?, range?, kind, value}] snapshots. *)
