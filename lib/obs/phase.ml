type phase =
  | Routing
  | Lease_wait
  | Lock_wait
  | Replication
  | Commit_wait
  | Refresh
  | Retry_backoff
  | Staging
  | Recovery
  | Epoch_wait

let all_phases =
  [ Routing; Lease_wait; Lock_wait; Replication; Commit_wait; Refresh;
    Retry_backoff; Staging; Recovery; Epoch_wait ]

let index = function
  | Routing -> 0
  | Lease_wait -> 1
  | Lock_wait -> 2
  | Replication -> 3
  | Commit_wait -> 4
  | Refresh -> 5
  | Retry_backoff -> 6
  | Staging -> 7
  | Recovery -> 8
  | Epoch_wait -> 9

let name = function
  | Routing -> "routing"
  | Lease_wait -> "lease_wait"
  | Lock_wait -> "lock_wait"
  | Replication -> "replication"
  | Commit_wait -> "commit_wait"
  | Refresh -> "refresh"
  | Retry_backoff -> "retry_backoff"
  | Staging -> "staging"
  | Recovery -> "recovery"
  | Epoch_wait -> "epoch_wait"

let num_phases = List.length all_phases

type cells = { acc : int array; mutable wan : int }
type ctx = Nil | Ctx of cells

let nil = Nil
let make () = Ctx { acc = Array.make num_phases 0; wan = 0 }

let add ctx phase micros =
  match ctx with
  | Nil -> ()
  | Ctx c -> c.acc.(index phase) <- c.acc.(index phase) + micros

let add_wan ?(n = 1) ctx =
  match ctx with Nil -> () | Ctx c -> c.wan <- c.wan + n

let total ctx phase =
  match ctx with Nil -> 0 | Ctx c -> c.acc.(index phase)

let wan_rtts ctx = match ctx with Nil -> 0 | Ctx c -> c.wan

let reset ctx =
  match ctx with
  | Nil -> ()
  | Ctx c ->
      Array.fill c.acc 0 num_phases 0;
      c.wan <- 0

let is_nil ctx = ctx = Nil

(* Metric naming: [phase.<class>.<phase>] histograms (one sample per
   flushed operation, micros spent in that phase — zero-time phases are
   recorded too so per-class sample counts line up across phases) and a
   [wan_rtts.<class>] histogram holding the operation's WAN round-trip
   count. *)

let flush ctx ~cls metrics =
  match ctx with
  | Nil -> ()
  | Ctx c ->
      List.iter
        (fun p ->
          let h = Metrics.histogram metrics ("phase." ^ cls ^ "." ^ name p) in
          Crdb_stats.Hist.add h c.acc.(index p))
        all_phases;
      let h = Metrics.histogram metrics ("wan_rtts." ^ cls) in
      Crdb_stats.Hist.add h c.wan

let annotate ctx span =
  match ctx with
  | Nil -> ()
  | Ctx c ->
      List.iter
        (fun p ->
          let v = c.acc.(index p) in
          if v > 0 then
            Trace.annotate span ("phase." ^ name p) (string_of_int v))
        all_phases;
      if c.wan > 0 then Trace.annotate span "wan_rtts" (string_of_int c.wan)
