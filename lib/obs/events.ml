type kind =
  | Split
  | Merge
  | Rebalance
  | Lease_transfer
  | Lease_acquired
  | Wound
  | Abandoned_cleanup
  | Fault
  | Heal
  | Split_queued
  | Merge_queued
  | Lease_moved
  | Queue_skipped
  | Txn_staged
  | Txn_recovered

let kind_to_string = function
  | Split -> "split"
  | Merge -> "merge"
  | Rebalance -> "rebalance"
  | Lease_transfer -> "lease_transfer"
  | Lease_acquired -> "lease_acquired"
  | Wound -> "wound"
  | Abandoned_cleanup -> "abandoned_cleanup"
  | Fault -> "fault"
  | Heal -> "heal"
  | Split_queued -> "split_queued"
  | Merge_queued -> "merge_queued"
  | Lease_moved -> "lease_moved"
  | Queue_skipped -> "queue_skipped"
  | Txn_staged -> "txn_staged"
  | Txn_recovered -> "txn_recovered"

type event = {
  ts : int;
  kind : kind;
  node : int option;
  range : int option;
  txn : int option;
  attrs : (string * string) list;
}

module Vec = Crdb_stdx.Vec

type t = { now : unit -> int; log_ : event Vec.t }

let create ~now () = { now; log_ = Vec.create () }

let log t ?node ?range ?txn ?(attrs = []) kind =
  Vec.push t.log_ { ts = t.now (); kind; node; range; txn; attrs }

let all t = Vec.to_list t.log_
let length t = Vec.length t.log_
let of_kind t kind = List.filter (fun e -> e.kind = kind) (all t)
let count t kind = List.length (of_kind t kind)
let clear t = Vec.clear t.log_

let pp_scope ppf e =
  let part name = function
    | Some v -> Format.fprintf ppf " %s=%d" name v
    | None -> ()
  in
  part "node" e.node;
  part "range" e.range;
  part "txn" e.txn

let pp_event ppf e =
  Format.fprintf ppf "%10.3fs  %-17s" (float_of_int e.ts /. 1e6)
    (kind_to_string e.kind);
  pp_scope ppf e;
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%s" k v) e.attrs

let pp_timeline ppf t =
  let evs = all t in
  if evs = [] then Format.fprintf ppf "(no events)@."
  else List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) evs

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf "{\"ts\":%d,\"kind\":\"%s\"" e.ts
           (kind_to_string e.kind));
      (match e.node with
      | Some n -> Buffer.add_string buf (Printf.sprintf ",\"node\":%d" n)
      | None -> ());
      (match e.range with
      | Some r -> Buffer.add_string buf (Printf.sprintf ",\"range\":%d" r)
      | None -> ());
      (match e.txn with
      | Some x -> Buffer.add_string buf (Printf.sprintf ",\"txn\":%d" x)
      | None -> ());
      if e.attrs <> [] then begin
        Buffer.add_string buf ",\"attrs\":{";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_string buf ",";
            Buffer.add_string buf
              (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
          e.attrs;
        Buffer.add_string buf "}"
      end;
      Buffer.add_string buf "}")
    (all t);
  Buffer.add_string buf "]";
  Buffer.contents buf
