(** Phase-level latency decomposition and WAN round-trip accounting.

    A {!ctx} rides along with one logical operation (a request, or a whole
    transaction across its retries) and accumulates simulated time into
    named phases, plus a counter of WAN round trips — cross-region message
    exchanges, the unit the paper's §6 latency model prices operations in.

    The context is threaded explicitly through the kv/txn/net layers (an
    ambient/dynamically-scoped context would be unsound here: simulator
    processes interleave at every await point). Call sites default to
    {!nil}, which discards everything at the cost of one branch, mirroring
    how disabled {!Trace} spans behave.

    Phase totals are wall-clock attributions of the operation's time; with
    write pipelining the replication phase overlaps other work, so the sum
    of phases may legitimately exceed the end-to-end latency. *)

type phase =
  | Routing  (** span resolution + gateway→leaseholder request travel *)
  | Lease_wait  (** waiting out leaseholder misses / elections *)
  | Lock_wait  (** parked on a conflicting lock or intent *)
  | Replication  (** Raft proposal → quorum ack (consensus rounds) *)
  | Commit_wait  (** waiting out a future commit timestamp (§6.2.2) *)
  | Refresh  (** read refreshes after a timestamp push (§5.1) *)
  | Retry_backoff  (** sleeping between transaction restart attempts *)
  | Staging
      (** writing the STAGING record of a parallel commit (overlaps the
          final intents' replication, so it prices the commit's single
          effective consensus round) *)
  | Recovery
      (** running parallel-commit status recovery against someone else's
          STAGING record: querying declared in-flight writes and finalizing
          the record *)
  | Epoch_wait
      (** [`Epoch_occ] only: a committing transaction waiting for the next
          epoch boundary before validating and flushing its write buffer *)

val all_phases : phase list
val name : phase -> string
(** The stable wire name used in metric names, annotations, and docs. *)

type ctx

val nil : ctx
(** The discarding context: every operation on it is a no-op. *)

val make : unit -> ctx

val add : ctx -> phase -> int -> unit
(** Accumulate [micros] of simulated time into the phase. *)

val add_wan : ?n:int -> ctx -> unit
(** Count [n] (default 1) WAN round trips against the operation. *)

val total : ctx -> phase -> int
val wan_rtts : ctx -> int
val reset : ctx -> unit
val is_nil : ctx -> bool

val flush : ctx -> cls:string -> Metrics.t -> unit
(** Record one sample per phase into the [phase.<cls>.<phase>] histograms
    (including zero-time phases, so per-class counts agree) and the WAN
    round-trip count into [wan_rtts.<cls>]. Call once per completed
    operation; pair with {!reset} to reuse the context. No-op on {!nil}. *)

val annotate : ctx -> Trace.span -> unit
(** Attach the non-zero phase totals and WAN count as attributes on a trace
    span ([phase.<name>], [wan_rtts]). *)
