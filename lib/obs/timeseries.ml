module Vec = Crdb_stdx.Vec

(* One ring of time-aligned buckets per (name, range?) series. A bucket
   covers [epoch * width, (epoch + 1) * width) of simulated time and keeps
   the sample count, value sum and the raw samples (for window quantiles).
   Buckets are recycled in place as time advances: writing into a slot whose
   recorded epoch is stale resets it, so a series never allocates after its
   ring is warm. *)

type bucket = {
  mutable b_epoch : int;  (* -1 = never used *)
  mutable b_count : int;
  mutable b_sum : int;
  b_samples : int Vec.t;
}

type series = { s_name : string; s_range : int option; ring : bucket array }

type t = {
  now : unit -> int;
  width : int;
  num_buckets : int;
  tbl : (string * int option, series) Hashtbl.t;
}

let create ~now ?(bucket_width = 1_000_000) ?(num_buckets = 60) () =
  if bucket_width <= 0 then invalid_arg "Timeseries.create: bucket_width";
  if num_buckets <= 0 then invalid_arg "Timeseries.create: num_buckets";
  { now; width = bucket_width; num_buckets; tbl = Hashtbl.create 64 }

let bucket_width t = t.width
let span t = t.width * t.num_buckets

let series t ?range name =
  let key = (name, range) in
  match Hashtbl.find_opt t.tbl key with
  | Some s -> s
  | None ->
      let ring =
        Array.init t.num_buckets (fun _ ->
            { b_epoch = -1; b_count = 0; b_sum = 0; b_samples = Vec.create () })
      in
      let s = { s_name = name; s_range = range; ring } in
      Hashtbl.add t.tbl key s;
      s

let observe t ?range name value =
  let s = series t ?range name in
  let epoch = t.now () / t.width in
  let b = s.ring.(epoch mod t.num_buckets) in
  if b.b_epoch <> epoch then begin
    b.b_epoch <- epoch;
    b.b_count <- 0;
    b.b_sum <- 0;
    Vec.clear b.b_samples
  end;
  b.b_count <- b.b_count + 1;
  b.b_sum <- b.b_sum + value

(* Window arithmetic. A bucket with epoch e spans [e*w, (e+1)*w). Against
   the sliding window [now - window, now] it contributes fully once inside,
   and fractionally while the window's left edge crosses it — the classic
   sliding-window-counter estimate, assuming samples spread uniformly within
   a bucket. The current (partial) bucket always contributes fully: all of
   its samples are <= now. Everything is derived from integer sim time, so
   the result is deterministic across runs. *)

let fold_window t ?range ~window name f acc =
  match Hashtbl.find_opt t.tbl (name, range) with
  | None -> acc
  | Some s ->
      let now = t.now () in
      let lo = now - window in
      let cur_epoch = now / t.width in
      Array.fold_left
        (fun acc b ->
          if b.b_epoch < 0 || b.b_epoch > cur_epoch then acc
          else
            let s_start = b.b_epoch * t.width in
            let s_end = s_start + t.width in
            if s_end <= lo then acc
            else
              let frac =
                if s_start >= lo then 1.0
                else float_of_int (s_end - lo) /. float_of_int t.width
              in
              f acc b frac)
        acc s.ring

let window_count t ?range ?window name =
  let window = match window with Some w -> w | None -> span t in
  fold_window t ?range ~window name
    (fun acc b frac -> acc +. (float_of_int b.b_count *. frac))
    0.0

let window_sum t ?range ?window name =
  let window = match window with Some w -> w | None -> span t in
  fold_window t ?range ~window name
    (fun acc b frac -> acc +. (float_of_int b.b_sum *. frac))
    0.0

let rate t ?range ?window name =
  let w = match window with Some w -> w | None -> span t in
  window_count t ?range ~window:w name /. (float_of_int w /. 1e6)

let sum_rate t ?range ?window name =
  let w = match window with Some w -> w | None -> span t in
  window_sum t ?range ~window:w name /. (float_of_int w /. 1e6)

let percentile t ?range ?window name p =
  let window = match window with Some w -> w | None -> span t in
  let h = Crdb_stats.Hist.create () in
  let () =
    fold_window t ?range ~window name
      (fun () b _frac -> Vec.iter (Crdb_stats.Hist.add h) b.b_samples)
      ()
  in
  if Crdb_stats.Hist.is_empty h then None
  else Some (Crdb_stats.Hist.percentile h p)

let record_sample t ?range name value =
  let s = series t ?range name in
  let epoch = t.now () / t.width in
  let b = s.ring.(epoch mod t.num_buckets) in
  if b.b_epoch <> epoch then begin
    b.b_epoch <- epoch;
    b.b_count <- 0;
    b.b_sum <- 0;
    Vec.clear b.b_samples
  end;
  b.b_count <- b.b_count + 1;
  b.b_sum <- b.b_sum + value;
  Vec.push b.b_samples value

let names t =
  Hashtbl.fold (fun (n, _) _ acc -> n :: acc) t.tbl []
  |> List.sort_uniq String.compare

let ranges_of t name =
  Hashtbl.fold
    (fun (n, r) _ acc ->
      match r with Some r when n = name -> r :: acc | _ -> acc)
    t.tbl []
  |> List.sort_uniq Int.compare

let sorted_series t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.tbl []
  |> List.sort (fun a b ->
         match String.compare a.s_name b.s_name with
         | 0 -> compare a.s_range b.s_range
         | c -> c)

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[";
  let first = ref true in
  List.iter
    (fun s ->
      if not !first then Buffer.add_string buf ",";
      first := false;
      Buffer.add_string buf "{\"name\":\"";
      Buffer.add_string buf s.s_name;
      Buffer.add_string buf "\"";
      (match s.s_range with
      | Some r -> Buffer.add_string buf (Printf.sprintf ",\"range\":%d" r)
      | None -> ());
      Buffer.add_string buf ",\"buckets\":[";
      let bs =
        Array.to_list s.ring
        |> List.filter (fun b -> b.b_epoch >= 0)
        |> List.sort (fun a b -> Int.compare a.b_epoch b.b_epoch)
      in
      List.iteri
        (fun i b ->
          if i > 0 then Buffer.add_string buf ",";
          Buffer.add_string buf
            (Printf.sprintf "{\"start\":%d,\"count\":%d,\"sum\":%d}"
               (b.b_epoch * t.width) b.b_count b.b_sum))
        bs;
      Buffer.add_string buf "]}")
    (sorted_series t);
  Buffer.add_string buf "]";
  Buffer.contents buf
