(** Structured cluster event log: the queryable record of the cluster's
    discrete life events (splits, merges, rebalances, lease movement,
    wound-wait aborts, abandoned-txn cleanup, fault injection), each stamped
    with simulated time and scoped to a node/range/transaction.

    Where the {!Trace} layer answers "where did this request's time go",
    this log answers "what did the cluster do and when" — and unlike trace
    events it is always on, typed, and cheap to query. Events are appended
    in simulated-time order, so the timeline and JSON renderings are
    deterministic per seed. *)

type kind =
  | Split
  | Merge
  | Rebalance
  | Lease_transfer
  | Lease_acquired
  | Wound
  | Abandoned_cleanup
  | Fault
  | Heal
  | Split_queued  (** autopilot split queue decided to split a range *)
  | Merge_queued  (** autopilot merge queue decided to subsume a cold pair *)
  | Lease_moved  (** autopilot moved a lease toward load ([reason] attr) *)
  | Queue_skipped
      (** autopilot suppressed an otherwise-eligible action ([reason] attr,
          e.g. [cooldown]) — the hysteresis that prevents ping-pong thrash *)
  | Txn_staged
      (** a parallel commit wrote its STAGING record at the anchor range
          ([inflight] attr counts the declared in-flight writes) *)
  | Txn_recovered
      (** commit-status recovery finalized someone's STAGING record
          ([result] attr: [committed] or [aborted]) *)

val kind_to_string : kind -> string

type event = {
  ts : int;  (** simulated microseconds *)
  kind : kind;
  node : int option;
  range : int option;
  txn : int option;
  attrs : (string * string) list;
}

type t

val create : now:(unit -> int) -> unit -> t

val log :
  t ->
  ?node:int ->
  ?range:int ->
  ?txn:int ->
  ?attrs:(string * string) list ->
  kind ->
  unit

val all : t -> event list
(** Every event, in recording (= simulated-time) order. *)

val length : t -> int
val of_kind : t -> kind -> event list
val count : t -> kind -> int
val clear : t -> unit

val pp_event : Format.formatter -> event -> unit
val pp_timeline : Format.formatter -> t -> unit
(** One line per event: time, kind, scope, attributes. *)

val to_json : t -> string
(** Deterministic JSON array in recording order. *)
