module Hist = Crdb_stats.Hist

type scope = { s_name : string; s_node : int option; s_range : int option }

type metric =
  | M_counter of int ref
  | M_gauge of int ref
  | M_hist of Hist.t

type t = { tbl : (scope, metric) Hashtbl.t }

type counter = int ref
type gauge = int ref

let create () = { tbl = Hashtbl.create 64 }

let scope ?node ?range name = { s_name = name; s_node = node; s_range = range }

let find_or_add t key make =
  match Hashtbl.find_opt t.tbl key with
  | Some m -> m
  | None ->
      let m = make () in
      Hashtbl.replace t.tbl key m;
      m

let counter t ?node ?range name =
  match find_or_add t (scope ?node ?range name) (fun () -> M_counter (ref 0)) with
  | M_counter c -> c
  | M_gauge _ | M_hist _ ->
      invalid_arg (Printf.sprintf "Metrics.counter: %s is not a counter" name)

let gauge t ?node ?range name =
  match find_or_add t (scope ?node ?range name) (fun () -> M_gauge (ref 0)) with
  | M_gauge g -> g
  | M_counter _ | M_hist _ ->
      invalid_arg (Printf.sprintf "Metrics.gauge: %s is not a gauge" name)

let histogram t ?node ?range name =
  match find_or_add t (scope ?node ?range name) (fun () -> M_hist (Hist.create ())) with
  | M_hist h -> h
  | M_counter _ | M_gauge _ ->
      invalid_arg (Printf.sprintf "Metrics.histogram: %s is not a histogram" name)

let inc c = incr c
let add c n = c := !c + n
let value c = !c
let set g v = g := v

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)

let fold t f init =
  (* Deterministic order: sort scopes before folding. *)
  let items = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl [] in
  let items =
    List.sort
      (fun (a, _) (b, _) ->
        let c = String.compare a.s_name b.s_name in
        if c <> 0 then c
        else
          let c = compare a.s_node b.s_node in
          if c <> 0 then c else compare a.s_range b.s_range)
      items
  in
  List.fold_left (fun acc (k, v) -> f acc k v) init items

let total t name =
  fold t
    (fun acc k m ->
      if String.equal k.s_name name then
        match m with
        | M_counter c | M_gauge c -> acc + !c
        | M_hist h -> acc + Hist.count h
      else acc)
    0

let merged_hist t name =
  let dst = Hist.create () in
  Hashtbl.iter
    (fun k m ->
      match m with
      | M_hist h when String.equal k.s_name name -> Hist.merge_into ~dst h
      | M_hist _ | M_counter _ | M_gauge _ -> ())
    t.tbl;
  dst

let names t =
  fold t
    (fun acc k _ -> if List.mem k.s_name acc then acc else k.s_name :: acc)
    []
  |> List.rev

(* ------------------------------------------------------------------ *)
(* Export                                                              *)

let scope_label k =
  String.concat ""
    [
      k.s_name;
      (match (k.s_node, k.s_range) with
      | None, None -> ""
      | Some n, None -> Printf.sprintf "{node=%d}" n
      | None, Some r -> Printf.sprintf "{range=%d}" r
      | Some n, Some r -> Printf.sprintf "{node=%d,range=%d}" n r);
    ]

let pp ppf t =
  fold t
    (fun () k m ->
      match m with
      | M_counter c -> Format.fprintf ppf "%-48s %d@." (scope_label k) !c
      | M_gauge g -> Format.fprintf ppf "%-48s %d (gauge)@." (scope_label k) !g
      | M_hist h ->
          if Hist.is_empty h then
            Format.fprintf ppf "%-48s (no samples)@." (scope_label k)
          else
            Format.fprintf ppf "%-48s n=%d mean=%.1f p50=%d p90=%d p99=%d@."
              (scope_label k) (Hist.count h) (Hist.mean h) (Hist.p50 h)
              (Hist.p90 h) (Hist.p99 h))
    ()

let scope_json k =
  let buf = Buffer.create 48 in
  Buffer.add_string buf (Printf.sprintf "\"name\":\"%s\"" k.s_name);
  (match k.s_node with
  | Some n -> Buffer.add_string buf (Printf.sprintf ",\"node\":%d" n)
  | None -> ());
  (match k.s_range with
  | Some r -> Buffer.add_string buf (Printf.sprintf ",\"range\":%d" r)
  | None -> ());
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[";
  let first = ref true in
  fold t
    (fun () k m ->
      if not !first then Buffer.add_string buf ",";
      first := false;
      Buffer.add_string buf "\n{";
      Buffer.add_string buf (scope_json k);
      (match m with
      | M_counter c ->
          Buffer.add_string buf
            (Printf.sprintf ",\"kind\":\"counter\",\"value\":%d" !c)
      | M_gauge g ->
          Buffer.add_string buf
            (Printf.sprintf ",\"kind\":\"gauge\",\"value\":%d" !g)
      | M_hist h ->
          Buffer.add_string buf
            (Printf.sprintf ",\"kind\":\"histogram\",\"value\":%s"
               (Hist.to_json h)));
      Buffer.add_string buf "}")
    ();
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf
