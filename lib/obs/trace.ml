module Vec = Crdb_stdx.Vec

type kind = K_span of { dur : int } | K_instant

type record = {
  rec_id : int;
  rec_parent : int option;
  rec_name : string;
  rec_ts : int;
  rec_kind : kind;
  rec_node : int option;
  rec_range : int option;
  rec_txn : int option;
  rec_attrs : (string * string) list;
}

type span =
  | Nil
  | Live of {
      sp_id : int;
      sp_parent : int option;
      sp_name : string;
      sp_start : int;
      sp_node : int option;
      sp_range : int option;
      sp_txn : int option;
      mutable sp_attrs : (string * string) list;
      mutable sp_done : bool;
    }

type t = {
  now : unit -> int;
  mutable enabled : bool;
  mutable next_id : int;
  records : record Vec.t;
}

let create ~now () = { now; enabled = false; next_id = 1; records = Vec.create () }
let enable t = t.enabled <- true
let disable t = t.enabled <- false
let is_enabled t = t.enabled
let nil = Nil

let clear t =
  Vec.clear t.records;
  t.next_id <- 1

let num_records t = Vec.length t.records
let span_id = function Nil -> None | Live s -> Some s.sp_id

let span t ?parent ?node ?range ?txn name =
  if not t.enabled then Nil
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    let parent = match parent with Some p -> span_id p | None -> None in
    Live
      {
        sp_id = id;
        sp_parent = parent;
        sp_name = name;
        sp_start = t.now ();
        sp_node = node;
        sp_range = range;
        sp_txn = txn;
        sp_attrs = [];
        sp_done = false;
      }
  end

let annotate sp key value =
  match sp with
  | Nil -> ()
  | Live s -> s.sp_attrs <- (key, value) :: s.sp_attrs

let finish t sp =
  match sp with
  | Nil -> ()
  | Live s ->
      if not s.sp_done then begin
        s.sp_done <- true;
        Vec.push t.records
          {
            rec_id = s.sp_id;
            rec_parent = s.sp_parent;
            rec_name = s.sp_name;
            rec_ts = s.sp_start;
            rec_kind = K_span { dur = t.now () - s.sp_start };
            rec_node = s.sp_node;
            rec_range = s.sp_range;
            rec_txn = s.sp_txn;
            rec_attrs = List.rev s.sp_attrs;
          }
      end

let event t ?parent ?node ?range ?txn ?(attrs = []) name =
  if t.enabled then begin
    let id = t.next_id in
    t.next_id <- id + 1;
    Vec.push t.records
      {
        rec_id = id;
        rec_parent = (match parent with Some p -> span_id p | None -> None);
        rec_name = name;
        rec_ts = t.now ();
        rec_kind = K_instant;
        rec_node = node;
        rec_range = range;
        rec_txn = txn;
        rec_attrs = attrs;
      }
  end

let count_events t name =
  let n = ref 0 in
  Vec.iter
    (fun r ->
      match r.rec_kind with
      | K_instant when String.equal r.rec_name name -> incr n
      | K_instant | K_span _ -> ())
    t.records;
  !n

let events_named t name =
  List.filter_map
    (fun r ->
      match r.rec_kind with
      | K_instant when String.equal r.rec_name name ->
          Some (r.rec_ts, r.rec_attrs)
      | K_instant | K_span _ -> None)
    (Vec.to_list t.records)

(* ------------------------------------------------------------------ *)
(* Export                                                              *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let sorted_records t =
  let arr = Array.of_list (Vec.to_list t.records) in
  Array.sort (fun a b -> Int.compare a.rec_id b.rec_id) arr;
  arr

let record_args buf r =
  Buffer.add_string buf "{";
  let first = ref true in
  let field k v =
    if not !first then Buffer.add_string buf ",";
    first := false;
    Buffer.add_string buf (Printf.sprintf "\"%s\":%s" (json_escape k) v)
  in
  (match r.rec_range with Some rid -> field "range" (string_of_int rid) | None -> ());
  (match r.rec_txn with Some x -> field "txn" (string_of_int x) | None -> ());
  List.iter
    (fun (k, v) -> field k (Printf.sprintf "\"%s\"" (json_escape v)))
    r.rec_attrs;
  Buffer.add_string buf "}"

(* Chrome trace-event format (loadable in about://tracing and Perfetto):
   spans are "X" complete events, instants are "i" events. The pid carries
   the node id so each node renders as its own process track; the tid
   carries the transaction id when one is attached. *)
let to_chrome_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  Array.iter
    (fun r ->
      if not !first then Buffer.add_string buf ",";
      first := false;
      Buffer.add_string buf "\n{";
      Buffer.add_string buf
        (Printf.sprintf "\"name\":\"%s\",\"cat\":\"crdb\"" (json_escape r.rec_name));
      (match r.rec_kind with
      | K_span { dur } ->
          Buffer.add_string buf (Printf.sprintf ",\"ph\":\"X\",\"dur\":%d" dur)
      | K_instant -> Buffer.add_string buf ",\"ph\":\"i\",\"s\":\"t\"");
      Buffer.add_string buf (Printf.sprintf ",\"ts\":%d" r.rec_ts);
      Buffer.add_string buf
        (Printf.sprintf ",\"pid\":%d"
           (match r.rec_node with Some n -> n | None -> 0));
      Buffer.add_string buf
        (Printf.sprintf ",\"tid\":%d"
           (match r.rec_txn with Some x -> x | None -> 0));
      Buffer.add_string buf (Printf.sprintf ",\"id\":%d" r.rec_id);
      Buffer.add_string buf ",\"args\":";
      record_args buf r;
      Buffer.add_string buf "}")
    (sorted_records t);
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let pp_tree ppf t =
  let arr = sorted_records t in
  let children = Hashtbl.create 64 in
  let roots = ref [] in
  Array.iter
    (fun r ->
      match r.rec_parent with
      | Some p ->
          let l =
            match Hashtbl.find_opt children p with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.replace children p l;
                l
          in
          l := r :: !l
      | None -> roots := r :: !roots)
    arr;
  let scope r =
    String.concat ""
      [
        (match r.rec_node with Some n -> Printf.sprintf " n%d" n | None -> "");
        (match r.rec_range with Some x -> Printf.sprintf " r%d" x | None -> "");
        (match r.rec_txn with Some x -> Printf.sprintf " txn%d" x | None -> "");
      ]
  in
  let rec pp_rec depth r =
    let indent = String.make (2 * depth) ' ' in
    (match r.rec_kind with
    | K_span { dur } ->
        Format.fprintf ppf "%s%s%s [%d +%dus]@." indent r.rec_name (scope r)
          r.rec_ts dur
    | K_instant ->
        Format.fprintf ppf "%s%s%s [%d]@." indent r.rec_name (scope r) r.rec_ts);
    List.iter
      (fun (k, v) ->
        Format.fprintf ppf "%s  · %s=%s@." (String.make (2 * depth) ' ') k v)
      r.rec_attrs;
    ignore indent;
    match Hashtbl.find_opt children r.rec_id with
    | Some l -> List.iter (pp_rec (depth + 1)) (List.rev !l)
    | None -> ()
  in
  List.iter (pp_rec 0) (List.rev !roots)
