(** Deterministic hierarchical tracing keyed to simulated time.

    Spans and instant events are recorded at the resolution of the supplied
    [now] clock (the discrete-event simulator's microsecond counter), so two
    runs of the same seed produce byte-identical exports — traces double as
    regression artifacts. Recording is off by default and costs one branch
    per call site when disabled. *)

type t

type span
(** A handle for an in-progress span. Spans created while tracing is
    disabled are the shared {!nil} and every operation on them is a no-op. *)

val create : now:(unit -> int) -> unit -> t
(** [create ~now ()] makes an empty, disabled trace recorder; [now] is
    expected to return simulated microseconds. *)

val enable : t -> unit
val disable : t -> unit
val is_enabled : t -> bool

val nil : span
(** The inert span: safe to pass as a parent, never recorded. *)

val span :
  t -> ?parent:span -> ?node:int -> ?range:int -> ?txn:int -> string -> span
(** Open a span starting now. [node]/[range]/[txn] scope the span to a
    simulated node, range, or transaction and drive the export layout. *)

val finish : t -> span -> unit
(** Close the span and record it (duration = now - start). Idempotent. *)

val annotate : span -> string -> string -> unit
(** Attach a key/value attribute to an open span. *)

val event :
  t ->
  ?parent:span ->
  ?node:int ->
  ?range:int ->
  ?txn:int ->
  ?attrs:(string * string) list ->
  string ->
  unit
(** Record an instantaneous event. *)

val span_id : span -> int option
val clear : t -> unit
val num_records : t -> int

val count_events : t -> string -> int
(** Number of recorded instant events with this name (e.g. a chaos suite
    asserting that every injected fault left a [chaos.inject] record). *)

val events_named : t -> string -> (int * (string * string) list) list
(** The [(timestamp, attrs)] of every instant event with this name, in
    recording order. *)

val to_chrome_json : t -> string
(** Chrome trace-event JSON ([{"traceEvents": [...]}]); load the file in
    about://tracing or {{:https://ui.perfetto.dev}Perfetto}. Nodes appear as
    processes (pid), transactions as threads (tid). *)

val pp_tree : Format.formatter -> t -> unit
(** Compact indented text rendering of the span forest. *)
