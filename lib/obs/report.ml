module Hist = Crdb_stats.Hist

(* End-of-run introspection report, rendered purely from the observability
   context: every number below comes from metrics/timeseries/events that
   accumulate deterministically in simulated time, so the rendering is
   byte-identical across runs of the same seed. *)

let phase_prefix = "phase."
let wan_prefix = "wan_rtts."

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Op classes are discovered from the metric registry: [phase.<cls>.<phase>]
   and [wan_rtts.<cls>]. Phase names are a closed set without dots, so the
   class is everything between the prefix and the final [.<phase>]. *)
let phase_classes metrics =
  List.filter_map
    (fun n ->
      if not (starts_with ~prefix:phase_prefix n) then None
      else
        let rest =
          String.sub n (String.length phase_prefix)
            (String.length n - String.length phase_prefix)
        in
        List.find_map
          (fun p ->
            let suffix = "." ^ Phase.name p in
            if
              String.length rest > String.length suffix
              && String.sub rest
                   (String.length rest - String.length suffix)
                   (String.length suffix)
                 = suffix
            then
              Some (String.sub rest 0 (String.length rest - String.length suffix))
            else None)
          Phase.all_phases)
    (Metrics.names metrics)
  |> List.sort_uniq String.compare

let wan_classes metrics =
  List.filter_map
    (fun n ->
      if starts_with ~prefix:wan_prefix n then
        Some
          (String.sub n (String.length wan_prefix)
             (String.length n - String.length wan_prefix))
      else None)
    (Metrics.names metrics)
  |> List.sort_uniq String.compare

let ms v = float_of_int v /. 1000.0

let pp_phase_table ppf metrics =
  let classes = phase_classes metrics in
  if classes = [] then Format.fprintf ppf "(no phase samples)@."
  else
    List.iter
      (fun cls ->
        Format.fprintf ppf "%s:@." cls;
        List.iter
          (fun p ->
            let h =
              Metrics.merged_hist metrics
                (phase_prefix ^ cls ^ "." ^ Phase.name p)
            in
            if (not (Hist.is_empty h)) && Hist.max_value h > 0 then
              Format.fprintf ppf
                "  %-14s n=%-6d mean=%8.1fms  p50=%8.1fms  p99=%8.1fms  \
                 max=%8.1fms@."
                (Phase.name p) (Hist.count h)
                (Hist.mean h /. 1000.0)
                (ms (Hist.p50 h)) (ms (Hist.p99 h))
                (ms (Hist.max_value h)))
          Phase.all_phases)
      classes

let pp_wan_table ?(predicted = []) ppf metrics =
  let classes = wan_classes metrics in
  if classes = [] then Format.fprintf ppf "(no WAN round-trip samples)@."
  else
    List.iter
      (fun cls ->
        let h = Metrics.merged_hist metrics (wan_prefix ^ cls) in
        if not (Hist.is_empty h) then begin
          let measured = Hist.p50 h in
          Format.fprintf ppf "%-24s n=%-6d measured(p50)=%d  mean=%.2f" cls
            (Hist.count h) measured (Hist.mean h);
          (match List.assoc_opt cls predicted with
          | Some p ->
              let verdict =
                if abs (measured - p) <= 1 then "ok" else "MISMATCH"
              in
              Format.fprintf ppf "  predicted=%d  [%s]" p verdict
          | None -> ());
          Format.fprintf ppf "@."
        end)
      classes

(* Timeseries names the KV layer feeds (see docs/METRICS.md). *)
let qps_series = "kv.range.qps"
let write_bytes_series = "kv.range.write_bytes"
let latency_series = "kv.range.latency"

let pp_hot_ranges ?(top = 5) ppf ts =
  let ranges = Timeseries.ranges_of ts qps_series in
  let scored =
    List.map (fun r -> (r, Timeseries.rate ts ~range:r qps_series)) ranges
    |> List.sort (fun (r1, q1) (r2, q2) ->
           match compare q2 q1 with 0 -> Int.compare r1 r2 | c -> c)
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  match take top scored with
  | [] -> Format.fprintf ppf "(no per-range load recorded)@."
  | hot ->
      List.iter
        (fun (r, qps) ->
          let wb = Timeseries.sum_rate ts ~range:r write_bytes_series in
          let p99 = Timeseries.percentile ts ~range:r latency_series 99.0 in
          Format.fprintf ppf "range %-4d qps=%8.2f  write-bytes/s=%10.1f" r
            qps wb;
          (match p99 with
          | Some v -> Format.fprintf ppf "  p99=%8.1fms" (ms v)
          | None -> ());
          Format.fprintf ppf "@.")
        hot

let pp_event_summary ppf events =
  let kinds =
    [ Events.Split; Events.Merge; Events.Rebalance; Events.Lease_transfer;
      Events.Lease_acquired; Events.Wound; Events.Abandoned_cleanup;
      Events.Fault; Events.Heal; Events.Split_queued; Events.Merge_queued;
      Events.Lease_moved; Events.Queue_skipped ]
  in
  let nonzero =
    List.filter_map
      (fun k ->
        let n = Events.count events k in
        if n > 0 then Some (k, n) else None)
      kinds
  in
  if nonzero = [] then Format.fprintf ppf "(none)@."
  else
    List.iter
      (fun (k, n) ->
        Format.fprintf ppf "%-18s %d@." (Events.kind_to_string k) n)
      nonzero

let pp ?predicted ?top ?(timeline = true) ppf obs =
  Format.fprintf ppf "== Phase latency by op class ==@.";
  pp_phase_table ppf (Obs.metrics obs);
  Format.fprintf ppf "@.== WAN round trips by op class (measured vs \u{00a7}6 model) ==@.";
  pp_wan_table ?predicted ppf (Obs.metrics obs);
  Format.fprintf ppf "@.== Hottest ranges (sliding-window) ==@.";
  pp_hot_ranges ?top ppf (Obs.timeseries obs);
  Format.fprintf ppf "@.== Cluster events ==@.";
  pp_event_summary ppf (Obs.events obs);
  if timeline then begin
    Format.fprintf ppf "@.== Event timeline ==@.";
    Events.pp_timeline ppf (Obs.events obs)
  end

let to_string ?predicted ?top ?timeline obs =
  Format.asprintf "%a" (fun ppf () -> pp ?predicted ?top ?timeline ppf obs) ()
