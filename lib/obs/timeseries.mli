(** Windowed timeseries over a fixed ring of time-aligned buckets.

    Each series — identified by [(name, range?)] — owns a ring of
    [num_buckets] buckets of [bucket_width] simulated microseconds. Samples
    land in the bucket covering the current sim time; slots are recycled in
    place as time advances, so a series holds at most
    [bucket_width * num_buckets] of history and never grows.

    Read-side queries evaluate a sliding window [\[now - window, now\]]
    ending at the current sim time: buckets fully inside the window count
    fully, the bucket straddling the window's left edge counts fractionally
    (samples are assumed uniform within a bucket), and the current partial
    bucket counts fully. All arithmetic derives from integer simulated time,
    so identical seeds produce identical snapshots — like the trace export,
    the dump is a regression artifact. *)

type t

val create :
  now:(unit -> int) -> ?bucket_width:int -> ?num_buckets:int -> unit -> t
(** [now] returns simulated microseconds. Defaults: 1 s buckets, 60 of them
    (a one-minute retained span).
    @raise Invalid_argument on non-positive width or bucket count. *)

val bucket_width : t -> int

val span : t -> int
(** Retained history: [bucket_width * num_buckets]; also the default query
    window. *)

val observe : t -> ?range:int -> string -> int -> unit
(** Add one sample with the given value to the series' current bucket,
    keeping only count and sum (cheap; no quantiles). *)

val record_sample : t -> ?range:int -> string -> int -> unit
(** Like {!observe} but additionally retains the raw sample inside the
    bucket so {!percentile} can answer over the window. *)

val window_count : t -> ?range:int -> ?window:int -> string -> float
(** Estimated number of samples inside the window (fractional because of
    the straddling bucket). *)

val window_sum : t -> ?range:int -> ?window:int -> string -> float

val rate : t -> ?range:int -> ?window:int -> string -> float
(** Samples per second over the window: [window_count / window]. This is
    the per-range QPS feed for the future autopilot queues. *)

val sum_rate : t -> ?range:int -> ?window:int -> string -> float
(** Value units per second over the window (e.g. write bytes/s). *)

val percentile : t -> ?range:int -> ?window:int -> string -> float -> int option
(** Percentile of the raw samples retained by {!record_sample} whose bucket
    intersects the window; [None] when the window holds no samples. *)

val names : t -> string list
(** Distinct series names, sorted. *)

val ranges_of : t -> string -> int list
(** The range ids that have a series under this name, sorted. *)

val to_json : t -> string
(** Deterministic snapshot: series sorted by (name, range), buckets by
    start time, each as [{start, count, sum}]. *)
