#!/bin/sh
# Repo gate: build, run the full test suite, and (when ocamlformat is
# installed) check formatting. CI and pre-push hooks should run exactly this.
set -eu
cd "$(dirname "$0")"

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune fmt (check only)"
  dune build @fmt
else
  echo "== skipping fmt gate (ocamlformat not installed)"
fi

echo "== OK"
