#!/bin/sh
# Repo gate: build, run the full test suite, and (when ocamlformat is
# installed) check formatting. CI and pre-push hooks should run exactly this.
set -eu
cd "$(dirname "$0")"

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

# Bounded chaos gate: a fixed window of seeded random-nemesis runs whose
# histories must check out (linearizable registers, conserved bank).
# Deterministic — a failure here reproduces exactly with the printed seed:
#   dune exec bin/crdb_sim.exe -- chaos --seed <S> --history
echo "== chaos gate (seeds 101-104)"
dune exec bin/crdb_sim.exe -- chaos --seed 101 --seeds 4 --survival region
dune exec bin/crdb_sim.exe -- chaos --seed 101 --seeds 2 --survival zone

# Range-lifecycle gate: splits, merges and rebalances race node kills and
# lease transfers under the same checkers. Exits nonzero on any violation.
echo "== chaos gate with range lifecycle (seeds 201-203)"
dune exec bin/crdb_sim.exe -- chaos --seed 201 --seeds 3 --survival region \
  --faults kill-node,lease-transfer,split-range,merge-range,rebalance

echo "== splits demo (routing after 100+ splits)"
dune exec bin/crdb_sim.exe -- splits --ranges 120

# Serializability gate: multi-key transactions spanning several ranges race
# the full fault mix (kills, partitions, clock jumps, lease transfers and
# the range lifecycle); the dependency-graph checker must find no cycle.
echo "== serializability chaos gate (seeds 101-103)"
dune exec bin/crdb_sim.exe -- chaos --seed 101 --seeds 3 --survival region \
  --checker serializability \
  --faults kill-node,partition,clock-jump,lease-transfer,split-range,merge-range,rebalance

# The deliberately broken mode (no read-span refresh on timestamp pushes)
# must be caught and classified, with the dump/offline-check path agreeing.
echo "== serializability catches --unsafe-no-refresh (seed 303)"
tmpdump=$(mktemp)
trap 'rm -f "$tmpdump"' EXIT
if out=$(dune exec bin/crdb_sim.exe -- chaos --seed 303 --survival region \
  --checker serializability --unsafe-no-refresh --dump-history "$tmpdump" \
  --faults kill-node,partition,clock-jump,lease-transfer,split-range,merge-range,rebalance 2>&1); then
  echo "$out"
  echo "BUG NOT CAUGHT: --unsafe-no-refresh exited zero"
  exit 1
fi
echo "$out" | grep -q "G2-item" || {
  echo "$out"
  echo "expected a G2-item classification"
  exit 1
}
# Offline re-check of the dumped history reaches the same verdict.
if out=$(dune exec bin/crdb_sim.exe -- check "$tmpdump" 2>&1); then
  echo "$out"
  echo "BUG NOT CAUGHT: offline check of the dump exited zero"
  exit 1
fi
echo "$out" | grep -q "G2-item" || {
  echo "$out"
  echo "offline check lost the G2-item classification"
  exit 1
}

# Wound-wait conflict gate: a conflict-heavy transactional workload (all
# clients hammering 4 hot keys) racing leaseholder kills must finish with
# zero 10s conflict timeouts — deadlocks and orphaned intents are resolved
# by the push/wound protocol — and a clean serializability verdict.
echo "== wound-wait conflict gate (seeds 501-503)"
dune exec bin/crdb_sim.exe -- chaos --seed 501 --seeds 3 --survival region \
  --checker serializability --txn-clients 6 --txn-hot-keys 4 \
  --faults kill-node,lease-transfer --max-conflict-timeouts 0

# Epoch-OCC gate: the same conflict-heavy workload under the optimistic
# backend (--cc-mode=epoch): lock-free transaction bodies, commits grouped
# and validated at 25ms epoch boundaries. Within-epoch conflicts resolve by
# validation order (restarts, not lock waits), so the run must stay clean
# with zero 10s conflict timeouts.
echo "== epoch-OCC conflict gate (seeds 501-503)"
dune exec bin/crdb_sim.exe -- chaos --seed 501 --seeds 3 --survival region \
  --checker serializability --cc-mode epoch --txn-clients 6 --txn-hot-keys 4 \
  --faults kill-node,lease-transfer --max-conflict-timeouts 0

# Epoch validation IS the commit-time read refresh, so the broken mode that
# skips refreshes guts the whole validation step: the serializability
# checker must catch the resulting cycles and the run must exit nonzero.
echo "== serializability catches epoch --unsafe-no-refresh (seed 501)"
if out=$(dune exec bin/crdb_sim.exe -- chaos --seed 501 --survival region \
  --checker serializability --cc-mode epoch --txn-clients 6 --txn-hot-keys 4 \
  --faults kill-node,lease-transfer --unsafe-no-refresh 2>&1); then
  echo "$out"
  echo "BUG NOT CAUGHT: epoch --unsafe-no-refresh exited zero"
  exit 1
fi
echo "$out" | grep -q "cycle:" || {
  echo "$out"
  echo "expected a witness cycle from epoch --unsafe-no-refresh"
  exit 1
}

# Backend comparison evidence (wound-wait vs epoch-OCC p50/p99 on the
# hot-key workload) lands in BENCH_results.json.
echo "== bench cc-modes (wound-wait vs epoch OCC)"
dune exec bench/main.exe -- cc-modes

# Parallel-commit recovery gate: the same conflict-heavy workload, now with
# coordinators dying between staging a parallel commit and resolving it.
# Pushers must finish commit-status recovery on the stranded STAGING
# records: clean serializability verdict and zero conflict timeouts.
echo "== parallel-commit recovery gate (seeds 701-703)"
dune exec bin/crdb_sim.exe -- chaos --seed 701 --seeds 3 --survival region \
  --checker serializability --txn-clients 6 --txn-hot-keys 4 \
  --faults kill-node,lease-transfer --max-conflict-timeouts 0

# The deliberately broken recovery (pushers abort STAGING records without
# probing the declared in-flight writes, tearing down implicitly committed
# transactions) must be caught by the serializability checker.
echo "== serializability catches --unsafe-no-recovery (seed 701)"
if out=$(dune exec bin/crdb_sim.exe -- chaos --seed 701 --survival region \
  --checker serializability --txn-clients 6 --txn-hot-keys 4 \
  --faults kill-node,lease-transfer --unsafe-no-recovery 2>&1); then
  echo "$out"
  echo "BUG NOT CAUGHT: --unsafe-no-recovery exited zero"
  exit 1
fi
echo "$out" | grep -q "violation" || {
  echo "$out"
  echo "expected a consistency violation from --unsafe-no-recovery"
  exit 1
}

# Autopilot gate: a zipfian hot-spot workload with the background queues
# armed and NO lifecycle faults injected — every split must come from the
# split queue. The run fails if the queues split fewer than 2 ranges, if
# any manual split was needed, or if any checker verdict is not clean.
echo "== autopilot chaos gate (seeds 601-603)"
dune exec bin/crdb_sim.exe -- chaos --seed 601 --seeds 3 \
  --clients 7 --ops 100 --keys 48 --duration 20 \
  --faults kill-node,lease-transfer --checker serializability \
  --autopilot --min-auto-splits 2

# Off-vs-on convergence evidence (p99 + ranges / hottest-range share over
# time) lands in BENCH_results.json; the bench exits nonzero on any error.
echo "== bench autopilot (off vs on)"
dune exec bench/main.exe -- autopilot

# Observability determinism gate: the end-of-run report and the timeseries
# snapshot must be byte-identical across two runs of the same seed — the
# report is a regression artifact, like the trace export.
echo "== report determinism gate (seed 42)"
tmprep=$(mktemp -d)
trap 'rm -f "$tmpdump"; rm -rf "$tmprep"' EXIT
dune exec bin/crdb_sim.exe -- report --seed 42 \
  --out "$tmprep/r1.txt" --dump-timeseries "$tmprep/ts1.json"
dune exec bin/crdb_sim.exe -- report --seed 42 \
  --out "$tmprep/r2.txt" --dump-timeseries "$tmprep/ts2.json"
diff "$tmprep/r1.txt" "$tmprep/r2.txt" || {
  echo "report not deterministic across identical seeds"
  exit 1
}
diff "$tmprep/ts1.json" "$tmprep/ts2.json" || {
  echo "timeseries snapshot not deterministic across identical seeds"
  exit 1
}

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune fmt (check only)"
  dune build @fmt
else
  echo "== skipping fmt gate (ocamlformat not installed)"
fi

echo "== OK"
